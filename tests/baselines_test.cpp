// Baseline tests: BigUint arithmetic, Diaphora prime-product invariants,
// ACFG features (incl. betweenness), and Gemini structure2vec learnability.
#include <gtest/gtest.h>

#include "baselines/diaphora.h"
#include "baselines/gemini.h"
#include "cfg/acfg.h"
#include "compiler/compile.h"
#include "minic/parser.h"
#include "minic/sema.h"

namespace asteria::baselines {
namespace {

TEST(BigUint, SmallProducts) {
  BigUint n(1);
  n.MulSmall(6);
  n.MulSmall(7);
  EXPECT_EQ(n.ToString(), "42");
}

TEST(BigUint, LargeProductMatchesKnownFactorial) {
  BigUint n(1);
  for (std::uint64_t k = 2; k <= 25; ++k) n.MulSmall(k);
  EXPECT_EQ(n.ToString(), "15511210043330985984000000");  // 25!
}

TEST(BigUint, MulByLargeFactor) {
  BigUint n(0xFFFFFFFFFFFFFFFFull);
  n.MulSmall(0xFFFFFFFFFFFFFFFFull);
  // (2^64-1)^2 = 2^128 - 2^65 + 1
  EXPECT_EQ(n.ToString(), "340282366920938463426481119284349108225");
}

TEST(BigUint, ComparisonAndHash) {
  BigUint a(1), b(1);
  a.MulSmall(982451653);
  b.MulSmall(982451653);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.Hash(), b.Hash());
  b.MulSmall(2);
  EXPECT_NE(a, b);
  EXPECT_TRUE(a < b);
}

TEST(BigUint, BitLength) {
  EXPECT_EQ(BigUint(0).BitLength(), 0u);
  EXPECT_EQ(BigUint(1).BitLength(), 1u);
  EXPECT_EQ(BigUint(255).BitLength(), 8u);
  EXPECT_EQ(BigUint(256).BitLength(), 9u);
}

TEST(Primes, FirstPrimesAreCorrect) {
  const auto primes = FirstPrimes(10);
  EXPECT_EQ(primes,
            (std::vector<std::uint32_t>{2, 3, 5, 7, 11, 13, 17, 19, 23, 29}));
}

ast::Ast TreeOf(std::initializer_list<ast::NodeKind> kinds) {
  // Chain the kinds into a degenerate tree (structure is irrelevant for
  // Diaphora, which only sees the multiset).
  ast::Ast tree;
  ast::NodeId prev = ast::kInvalidNode;
  for (ast::NodeKind kind : kinds) {
    const ast::NodeId node = prev == ast::kInvalidNode
                                 ? tree.AddNode(kind)
                                 : tree.AddNode(kind, {prev});
    prev = node;
  }
  tree.set_root(prev);
  return tree;
}

TEST(Diaphora, ProductEqualIffMultisetEqual) {
  using ast::NodeKind;
  ast::Ast a = TreeOf({NodeKind::kVar, NodeKind::kReturn, NodeKind::kBlock});
  ast::Ast b = TreeOf({NodeKind::kReturn, NodeKind::kVar, NodeKind::kBlock});
  ast::Ast c = TreeOf({NodeKind::kNum, NodeKind::kReturn, NodeKind::kBlock});
  const auto sa = DiaphoraHash(a);
  const auto sb = DiaphoraHash(b);
  const auto sc = DiaphoraHash(c);
  EXPECT_EQ(sa.product, sb.product);  // same multiset, different order
  EXPECT_NE(sa.product, sc.product);
  EXPECT_DOUBLE_EQ(DiaphoraSimilarity(sa, sb), 1.0);
  EXPECT_LT(DiaphoraSimilarity(sa, sc), 1.0);
  EXPECT_GT(DiaphoraSimilarity(sa, sc), 0.0);
}

TEST(Diaphora, ProductSimilarityMatchesHistogramPath) {
  using ast::NodeKind;
  ast::Ast a = TreeOf({NodeKind::kIf, NodeKind::kEq, NodeKind::kVar,
                       NodeKind::kNum, NodeKind::kBlock, NodeKind::kAdd});
  ast::Ast b = TreeOf({NodeKind::kWhile, NodeKind::kLt, NodeKind::kVar,
                       NodeKind::kVar, NodeKind::kBlock});
  const auto sa = DiaphoraHash(a);
  const auto sb = DiaphoraHash(b);
  EXPECT_NEAR(DiaphoraProductSimilarity(sa.product, sb.product),
              DiaphoraSimilarity(sa, sb), 1e-12);
  EXPECT_DOUBLE_EQ(DiaphoraProductSimilarity(sa.product, sa.product), 1.0);
}

TEST(BigUint, DivModSmallRoundTrips) {
  BigUint n(1);
  for (std::uint64_t k = 2; k <= 20; ++k) n.MulSmall(k);  // 20!
  BigUint q = n;
  EXPECT_EQ(q.DivModSmall(19), 0u);  // 19 divides 20!
  q.MulSmall(19);
  EXPECT_EQ(q, n);
  BigUint r = n;
  EXPECT_NE(r.DivModSmall(23), 0u);  // 23 does not divide 20!
}

TEST(Diaphora, SimilarityIsSymmetricAndBounded) {
  using ast::NodeKind;
  ast::Ast a = TreeOf({NodeKind::kIf, NodeKind::kEq, NodeKind::kVar,
                       NodeKind::kNum, NodeKind::kBlock});
  ast::Ast b = TreeOf({NodeKind::kWhile, NodeKind::kLt, NodeKind::kVar,
                       NodeKind::kBlock});
  const auto sa = DiaphoraHash(a);
  const auto sb = DiaphoraHash(b);
  const double ab = DiaphoraSimilarity(sa, sb);
  EXPECT_DOUBLE_EQ(ab, DiaphoraSimilarity(sb, sa));
  EXPECT_GE(ab, 0.0);
  EXPECT_LE(ab, 1.0);
}

// ---- ACFG ---------------------------------------------------------------

binary::BinModule Compile(const std::string& source, binary::Isa isa) {
  minic::Program program;
  std::string error;
  EXPECT_TRUE(minic::Parse(source, &program, &error)) << error;
  EXPECT_TRUE(minic::Check(program, &error)) << error;
  auto result = compiler::CompileProgram(program, isa, "m");
  EXPECT_TRUE(result.ok) << result.error;
  return std::move(result.module);
}

TEST(Acfg, FeaturesCountInstructionClasses) {
  // g is large enough that no ISA inlines it, so the call edge survives.
  binary::BinModule module = Compile(R"(
    int g(int a) {
      int s = 0;
      int i;
      for (i = 0; i < a; i++) { s += i * a - (s >> 1) + (i ^ s); }
      while (s > 100) { s /= 3; s -= a; }
      return s + 1;
    }
    int f(int n) {
      int s = 0;
      int i;
      for (i = 0; i < n; i++) { s += g(i) * 3; }
      return s;
    }
  )",
                                     binary::Isa::kPpc);
  const int f_index = module.FindFunction("f");
  ASSERT_GE(f_index, 0);
  cfg::Acfg acfg = cfg::BuildAcfg(module.functions[static_cast<std::size_t>(f_index)]);
  ASSERT_GT(acfg.size(), 1);
  double total_insns = 0, total_calls = 0, total_branches = 0;
  for (const auto& node : acfg.nodes) {
    total_insns += node.features[4];
    total_calls += node.features[3];
    total_branches += node.features[2];
  }
  EXPECT_EQ(total_insns,
            static_cast<double>(module.functions[static_cast<std::size_t>(f_index)].size()));
  EXPECT_GE(total_calls, 1.0);
  EXPECT_GE(total_branches, 2.0);
}

TEST(Betweenness, LineGraph) {
  // 0 -> 1 -> 2: node 1 lies on the single shortest path 0->2.
  const std::vector<double> c =
      cfg::BetweennessCentrality({{1}, {2}, {}});
  EXPECT_DOUBLE_EQ(c[0], 0.0);
  EXPECT_DOUBLE_EQ(c[1], 1.0);
  EXPECT_DOUBLE_EQ(c[2], 0.0);
}

TEST(Betweenness, DiamondSplitsCredit) {
  // 0 -> {1,2} -> 3: two shortest paths, each middle node carries 0.5.
  const std::vector<double> c =
      cfg::BetweennessCentrality({{1, 2}, {3}, {3}, {}});
  EXPECT_DOUBLE_EQ(c[1], 0.5);
  EXPECT_DOUBLE_EQ(c[2], 0.5);
}

// ---- Gemini ---------------------------------------------------------------

TEST(Gemini, EmbeddingDeterministicAndShaped) {
  util::Rng rng(5);
  GeminiConfig config;
  config.embedding_dim = 16;
  GeminiModel model(config, rng);
  binary::BinModule module = Compile(
      "int f(int n) { if (n > 0) { return n * 2; } return -n; }",
      binary::Isa::kX64);
  cfg::Acfg acfg = cfg::BuildAcfg(module.functions[0]);
  const nn::Matrix e1 = model.Encode(acfg);
  const nn::Matrix e2 = model.Encode(acfg);
  EXPECT_EQ(e1.rows(), 16);
  for (std::size_t i = 0; i < e1.size(); ++i) EXPECT_DOUBLE_EQ(e1[i], e2[i]);
}

TEST(Gemini, SelfSimilarityIsOne) {
  util::Rng rng(6);
  GeminiConfig config;
  config.embedding_dim = 8;
  GeminiModel model(config, rng);
  binary::BinModule module = Compile(
      "int f(int n) { int s = 0; while (n > 0) { s += n; n--; } return s; }",
      binary::Isa::kArm);
  cfg::Acfg acfg = cfg::BuildAcfg(module.functions[0]);
  EXPECT_NEAR(model.Similarity(acfg, acfg), 1.0, 1e-9);
}

TEST(Gemini, TrainingSeparatesStructures) {
  util::Rng rng(7);
  GeminiConfig config;
  config.embedding_dim = 16;
  config.learning_rate = 0.05;
  GeminiModel model(config, rng);
  // Two structurally different functions, each compiled for two ISAs.
  const std::string loopy =
      "int f(int n) { int s = 0; int i; for (i = 0; i < n; i++) { s += i; } return s; }";
  const std::string branchy =
      "int f(int n) { if (n > 10) { return 1; } if (n > 5) { return 2; } if (n > 1) { return 3; } return 4; }";
  cfg::Acfg loop_x86 = cfg::BuildAcfg(Compile(loopy, binary::Isa::kX86).functions[0]);
  cfg::Acfg loop_ppc = cfg::BuildAcfg(Compile(loopy, binary::Isa::kPpc).functions[0]);
  cfg::Acfg branch_x86 = cfg::BuildAcfg(Compile(branchy, binary::Isa::kX86).functions[0]);
  cfg::Acfg branch_ppc = cfg::BuildAcfg(Compile(branchy, binary::Isa::kPpc).functions[0]);
  for (int step = 0; step < 40; ++step) {
    model.TrainPair(loop_x86, loop_ppc, +1);
    model.TrainPair(branch_x86, branch_ppc, +1);
    model.TrainPair(loop_x86, branch_ppc, -1);
    model.TrainPair(branch_x86, loop_ppc, -1);
  }
  EXPECT_GT(model.Similarity(loop_x86, loop_ppc),
            model.Similarity(loop_x86, branch_ppc));
}

}  // namespace
}  // namespace asteria::baselines
