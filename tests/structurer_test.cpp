// Direct structurer tests on hand-assembled machine code (no compiler in
// the loop): verifies the recovered statement kinds for canonical CFG
// shapes — sequence, if-then, if-then-else, while, self-loop, switch, and
// the goto fallback for irreducible flow.
#include <gtest/gtest.h>

#include "ast/ast.h"
#include "decompiler/decompile.h"
#include "decompiler/machine_cfg.h"
#include "decompiler/structurer.h"

namespace asteria::decompiler {
namespace {

using binary::Instruction;
using binary::Opcode;
using I = Instruction;

binary::BinModule ModuleWith(std::vector<Instruction> code,
                             int num_params = 1) {
  binary::BinModule module;
  module.isa = binary::Isa::kX64;
  binary::BinFunction fn;
  fn.name = "f";
  fn.num_params = num_params;
  fn.param_is_array.assign(static_cast<std::size_t>(num_params), 0);
  fn.frame_words = num_params + 4;
  fn.code = std::move(code);
  module.functions.push_back(std::move(fn));
  return module;
}

int CountKind(const ast::Ast& tree, ast::NodeKind kind) {
  int count = 0;
  for (ast::NodeId id : tree.PreOrder()) {
    if (tree.node(id).kind == kind) ++count;
  }
  return count;
}

TEST(Structurer, StraightLineIsFlatBlock) {
  // r1 = a0; r0 = r1 + 1; ret r0
  auto module = ModuleWith({
      I::Make(Opcode::kLoadI, 1, binary::kFramePointerReg, 0, 0),
      I::Make(Opcode::kAddI, 0, 1, 0, 1),
      I::Make(Opcode::kRet, 0),
  });
  auto result = DecompileFunction(module, 0);
  EXPECT_EQ(CountKind(result.tree, ast::NodeKind::kIf), 0);
  EXPECT_EQ(CountKind(result.tree, ast::NodeKind::kWhile), 0);
  EXPECT_EQ(CountKind(result.tree, ast::NodeKind::kGoto), 0);
  EXPECT_EQ(CountKind(result.tree, ast::NodeKind::kReturn), 1);
}

TEST(Structurer, IfThenElseBecomesIfNode) {
  //  0: r1 = a0
  //  1: cmp r1, 0
  //  2: brc.lt @5
  //  3: r0 = 1
  //  4: br @6
  //  5: r0 = 2
  //  6: ret r0
  auto module = ModuleWith({
      I::Make(Opcode::kLoadI, 1, binary::kFramePointerReg, 0, 0),
      I::Make(Opcode::kCmpI, 1, 0, 0, 0),
      I::Make(Opcode::kBrCond, 0, 0, 0, 5, binary::Cond::kLt),
      I::Make(Opcode::kMovImm, 0, 0, 0, 1),
      I::Make(Opcode::kBr, 0, 0, 0, 6),
      I::Make(Opcode::kMovImm, 0, 0, 0, 2),
      I::Make(Opcode::kRet, 0),
  });
  auto result = DecompileFunction(module, 0);
  std::string error;
  ASSERT_TRUE(result.tree.Validate(&error)) << error;
  EXPECT_EQ(CountKind(result.tree, ast::NodeKind::kIf), 1);
  EXPECT_EQ(CountKind(result.tree, ast::NodeKind::kGoto), 0);
  EXPECT_EQ(CountKind(result.tree, ast::NodeKind::kReturn), 1);
}

TEST(Structurer, WhileLoopRecovered) {
  //  0: r1 = a0
  //  1: r2 = 0
  //  2: cmp r2, r1 ; header
  //  3: brc.ge @6
  //  4: r2 = r2 + 1
  //  5: br @2
  //  6: ret r2
  auto module = ModuleWith({
      I::Make(Opcode::kLoadI, 1, binary::kFramePointerReg, 0, 0),
      I::Make(Opcode::kMovImm, 2, 0, 0, 0),
      I::Make(Opcode::kCmp, 2, 1),
      I::Make(Opcode::kBrCond, 0, 0, 0, 6, binary::Cond::kGe),
      I::Make(Opcode::kAddI, 2, 2, 0, 1),
      I::Make(Opcode::kBr, 0, 0, 0, 2),
      I::Make(Opcode::kRet, 2),
  });
  auto result = DecompileFunction(module, 0);
  std::string error;
  ASSERT_TRUE(result.tree.Validate(&error)) << error;
  EXPECT_EQ(CountKind(result.tree, ast::NodeKind::kWhile), 1);
  EXPECT_EQ(CountKind(result.tree, ast::NodeKind::kGoto), 0);
}

TEST(Structurer, SelfLoopBecomesWhile) {
  //  0: r1 = a0
  //  1: r1 = r1 - 1 ; single-block loop
  //  2: cmp r1, 0
  //  3: brc.gt @1
  //  4: ret r1
  auto module = ModuleWith({
      I::Make(Opcode::kLoadI, 1, binary::kFramePointerReg, 0, 0),
      I::Make(Opcode::kSubI, 1, 1, 0, 1),
      I::Make(Opcode::kCmpI, 1, 0, 0, 0),
      I::Make(Opcode::kBrCond, 0, 0, 0, 1, binary::Cond::kGt),
      I::Make(Opcode::kRet, 1),
  });
  auto result = DecompileFunction(module, 0);
  std::string error;
  ASSERT_TRUE(result.tree.Validate(&error)) << error;
  EXPECT_GE(CountKind(result.tree, ast::NodeKind::kWhile), 1);
}

TEST(Structurer, JumpTableBecomesSwitch) {
  //  0: r1 = a0
  //  1: jtab r1, table#0   (cases 0,1 -> @2,@4; default @6)
  //  2: r0 = 10
  //  3: br @7
  //  4: r0 = 20
  //  5: br @7
  //  6: r0 = -1
  //  7: ret r0
  auto module = ModuleWith({
      I::Make(Opcode::kLoadI, 1, binary::kFramePointerReg, 0, 0),
      I::Make(Opcode::kJmpTable, 1, 0, 0, 0),
      I::Make(Opcode::kMovImm, 0, 0, 0, 10),
      I::Make(Opcode::kBr, 0, 0, 0, 7),
      I::Make(Opcode::kMovImm, 0, 0, 0, 20),
      I::Make(Opcode::kBr, 0, 0, 0, 7),
      I::Make(Opcode::kMovImm, 0, 0, 0, -1),
      I::Make(Opcode::kRet, 0),
  });
  binary::JumpTable table;
  table.base = 0;
  table.targets = {2, 4};
  table.default_target = 6;
  module.functions[0].jump_tables.push_back(table);
  auto result = DecompileFunction(module, 0);
  std::string error;
  ASSERT_TRUE(result.tree.Validate(&error)) << error;
  EXPECT_EQ(CountKind(result.tree, ast::NodeKind::kSwitch), 1);
}

TEST(Structurer, IrreducibleFlowFallsBackToGoto) {
  // Two blocks jumping into each other's middles (classic irreducible
  // shape): entry cond-branches into two blocks that both jump to a shared
  // tail which loops back into one of them.
  //  0: r1 = a0
  //  1: cmp r1, 0
  //  2: brc.lt @5
  //  3: r1 = r1 + 1        ; block A
  //  4: br @6
  //  5: r1 = r1 - 1        ; block B
  //  6: cmp r1, 100        ; shared tail
  //  7: brc.lt @3          ; loops back into A (irreducible w.r.t. B)
  //  8: ret r1
  auto module = ModuleWith({
      I::Make(Opcode::kLoadI, 1, binary::kFramePointerReg, 0, 0),
      I::Make(Opcode::kCmpI, 1, 0, 0, 0),
      I::Make(Opcode::kBrCond, 0, 0, 0, 5, binary::Cond::kLt),
      I::Make(Opcode::kAddI, 1, 1, 0, 1),
      I::Make(Opcode::kBr, 0, 0, 0, 6),
      I::Make(Opcode::kSubI, 1, 1, 0, 1),
      I::Make(Opcode::kCmpI, 1, 0, 0, 100),
      I::Make(Opcode::kBrCond, 0, 0, 0, 3, binary::Cond::kLt),
      I::Make(Opcode::kRet, 1),
  });
  auto result = DecompileFunction(module, 0);
  std::string error;
  ASSERT_TRUE(result.tree.Validate(&error)) << error;
  // Everything still structures into a valid tree; some goto/loop mix is
  // acceptable, silent dropping of blocks is not: the AST must contain the
  // return and at least one loop-or-goto.
  EXPECT_EQ(CountKind(result.tree, ast::NodeKind::kReturn), 1);
  EXPECT_GE(CountKind(result.tree, ast::NodeKind::kWhile) +
                CountKind(result.tree, ast::NodeKind::kGoto),
            1);
}

TEST(Structurer, IdomOfDiamond) {
  auto module = ModuleWith({
      I::Make(Opcode::kLoadI, 1, binary::kFramePointerReg, 0, 0),
      I::Make(Opcode::kCmpI, 1, 0, 0, 0),
      I::Make(Opcode::kBrCond, 0, 0, 0, 5, binary::Cond::kLt),
      I::Make(Opcode::kMovImm, 0, 0, 0, 1),
      I::Make(Opcode::kBr, 0, 0, 0, 6),
      I::Make(Opcode::kMovImm, 0, 0, 0, 2),
      I::Make(Opcode::kRet, 0),
  });
  MachineCfg cfg(module.functions[0]);
  ASSERT_EQ(cfg.num_blocks(), 4);
  const auto idom = ComputeIdom(cfg);
  // Both arms and the join are immediately dominated by the entry... the
  // join's idom is the entry (block 0), not either arm.
  EXPECT_EQ(idom[1], 0);
  EXPECT_EQ(idom[2], 0);
  EXPECT_EQ(idom[3], 0);
  const auto ipdom = ComputeIpostdom(cfg);
  EXPECT_EQ(ipdom[0], 3);  // entry's join is the ret block
}

}  // namespace
}  // namespace asteria::decompiler
