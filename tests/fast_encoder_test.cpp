// Differential net for the fused tape-free inference kernel: over randomized
// ASTs, payload embedding on/off, leaf-init zeros/ones, rectangular dims, and
// thread counts 1/2/8, TreeLstmFastEncoder must produce embeddings bitwise
// identical to the autograd-tape reference TreeLstmEncoder::EncodeVector —
// including after training steps and checkpoint loads (the refresh rule) and
// across warm/cold SearchIndex snapshot round trips (docs/PERFORMANCE.md).
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "core/asteria.h"
#include "core/search_index.h"
#include "core/tree_lstm.h"
#include "core/tree_lstm_fast.h"
#include "util/rng.h"

namespace asteria {
namespace {

// Random n-ary AST with payload-carrying leaves (numbers and strings), so
// the preprocessed BinaryAst exercises nonzero payload buckets.
ast::Ast SyntheticTree(int nodes, util::Rng& rng) {
  ast::Ast tree;
  std::vector<ast::NodeId> pool;
  pool.push_back(tree.AddVar("x"));
  while (tree.size() < nodes) {
    const auto pick = rng.NextBounded(8);
    if (pick == 0) {
      pool.push_back(tree.AddNum(rng.NextInt(-100000, 100000)));
      continue;
    }
    if (pick == 1) {
      pool.push_back(tree.AddStr("s" + std::to_string(rng.NextBounded(50))));
      continue;
    }
    const auto kind = static_cast<ast::NodeKind>(
        rng.NextBounded(static_cast<std::uint64_t>(ast::kNumNodeKinds)));
    const int arity = static_cast<int>(rng.NextBounded(3));
    std::vector<ast::NodeId> children;
    for (int i = 0; i < arity && !pool.empty(); ++i) {
      children.push_back(pool.back());
      pool.pop_back();
    }
    pool.push_back(tree.AddNode(kind, std::move(children)));
  }
  const ast::NodeId root = tree.AddNode(ast::NodeKind::kBlock, pool);
  tree.set_root(root);
  return tree;
}

bool BitwiseEqual(const nn::Matrix& a, const nn::Matrix& b) {
  return a.SameShape(b) &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

// Cartesian sweep: payloads x leaf-init x (square and rectangular dims),
// many random trees per configuration.
TEST(FastEncoder, BitwiseIdenticalToTapeReference) {
  struct Dim {
    int embedding;
    int hidden;
  };
  const Dim dims[] = {{16, 16}, {8, 24}, {16, 64}};
  for (bool payloads : {false, true}) {
    for (bool leaf_ones : {false, true}) {
      for (const Dim& dim : dims) {
        core::TreeLstmConfig config;
        config.embedding_dim = dim.embedding;
        config.hidden_dim = dim.hidden;
        config.embed_payloads = payloads;
        config.leaf_init_ones = leaf_ones;
        nn::ParameterStore store;
        util::Rng init_rng(
            util::Rng::DeriveSeed(0xfa57, static_cast<std::uint64_t>(
                                              dim.hidden + (payloads ? 1000 : 0) +
                                              (leaf_ones ? 2000 : 0))));
        core::TreeLstmEncoder tape_encoder(config, &store, init_rng);
        core::TreeLstmFastEncoder fast_encoder(config, store);
        util::Rng tree_rng(7);
        for (int trial = 0; trial < 12; ++trial) {
          const ast::BinaryAst tree = core::AsteriaModel::Preprocess(
              SyntheticTree(5 + static_cast<int>(tree_rng.NextBounded(120)),
                            tree_rng));
          const nn::Matrix reference = tape_encoder.EncodeVector(tree);
          const nn::Matrix fast = fast_encoder.EncodeVector(tree);
          ASSERT_TRUE(BitwiseEqual(reference, fast))
              << "trial " << trial << " payloads=" << payloads
              << " leaf_ones=" << leaf_ones << " h=" << dim.hidden;
        }
      }
    }
  }
}

TEST(FastEncoder, EmptyTreeMatchesReference) {
  core::TreeLstmConfig config;
  nn::ParameterStore store;
  util::Rng rng(3);
  core::TreeLstmEncoder tape_encoder(config, &store, rng);
  core::TreeLstmFastEncoder fast_encoder(config, store);
  const ast::BinaryAst empty;
  EXPECT_TRUE(
      BitwiseEqual(tape_encoder.EncodeVector(empty), fast_encoder.EncodeVector(empty)));
}

// RefreshFrom picks up mutated weights: perturb a parameter in place, then
// the fast path must track the tape path again after a refresh.
TEST(FastEncoder, RefreshTracksParameterUpdates) {
  core::TreeLstmConfig config;
  nn::ParameterStore store;
  util::Rng rng(11);
  core::TreeLstmEncoder tape_encoder(config, &store, rng);
  core::TreeLstmFastEncoder fast_encoder(config, store);
  util::Rng tree_rng(12);
  const ast::BinaryAst tree =
      core::AsteriaModel::Preprocess(SyntheticTree(60, tree_rng));
  ASSERT_TRUE(BitwiseEqual(tape_encoder.EncodeVector(tree),
                           fast_encoder.EncodeVector(tree)));
  for (nn::Parameter* param : store.parameters()) {
    param->value.Scale(1.25);
  }
  fast_encoder.RefreshFrom(store);
  EXPECT_TRUE(BitwiseEqual(tape_encoder.EncodeVector(tree),
                           fast_encoder.EncodeVector(tree)));
}

std::vector<core::FunctionFeature> MakeFeatures(int count, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<core::FunctionFeature> features;
  features.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    core::FunctionFeature feature;
    feature.name = "fn" + std::to_string(i);
    feature.tree = core::AsteriaModel::Preprocess(
        SyntheticTree(10 + static_cast<int>(rng.NextBounded(80)), rng));
    feature.callee_count = static_cast<int>(rng.NextBounded(8));
    features.push_back(std::move(feature));
  }
  return features;
}

// SiameseModel::Encode with the fast path on must equal the tape path after
// training (dirty-flag refresh) — two models with identical seeds and
// identical training diverge only in their encode kernel.
TEST(FastEncoder, ModelEncodeRefreshesAfterTraining) {
  core::AsteriaConfig fast_config;
  fast_config.siamese.use_fast_encoder = true;
  core::AsteriaConfig tape_config;
  tape_config.siamese.use_fast_encoder = false;
  core::AsteriaModel fast_model(fast_config);
  core::AsteriaModel tape_model(tape_config);

  const auto features = MakeFeatures(8, 21);
  // Encode once pre-training (builds the fused copies), then train both
  // models identically and re-encode: the fast model must refresh.
  ASSERT_TRUE(BitwiseEqual(tape_model.Encode(features[0].tree),
                           fast_model.Encode(features[0].tree)));
  for (int step = 0; step < 6; ++step) {
    const auto& a = features[static_cast<std::size_t>(step % 4)];
    const auto& b = features[static_cast<std::size_t>(4 + step % 4)];
    const double loss_fast = fast_model.TrainPair(a.tree, b.tree, step % 2 == 0);
    const double loss_tape = tape_model.TrainPair(a.tree, b.tree, step % 2 == 0);
    ASSERT_EQ(loss_fast, loss_tape);
  }
  for (const core::FunctionFeature& feature : features) {
    EXPECT_TRUE(BitwiseEqual(tape_model.Encode(feature.tree),
                             fast_model.Encode(feature.tree)));
  }
}

// Checkpoint loads mark the fused copies stale too.
TEST(FastEncoder, ModelEncodeRefreshesAfterLoad) {
  const std::string path = testing::TempDir() + "/fast_encoder_ckpt.bin";
  core::AsteriaConfig config;
  config.seed = 5;
  core::AsteriaModel trained(config);
  const auto features = MakeFeatures(4, 31);
  for (int step = 0; step < 4; ++step) {
    trained.TrainPair(features[0].tree, features[1].tree, step % 2 == 0);
  }
  ASSERT_TRUE(trained.Save(path));

  core::AsteriaConfig other_config;
  other_config.seed = 99;  // different init; Load must override it
  core::AsteriaModel loaded(other_config);
  (void)loaded.Encode(features[2].tree);  // build fused copies pre-load
  ASSERT_TRUE(loaded.Load(path));
  for (const core::FunctionFeature& feature : features) {
    EXPECT_TRUE(BitwiseEqual(trained.Encode(feature.tree),
                             loaded.Encode(feature.tree)));
  }
}

// Warm/cold TopK across thread counts 1/2/8: the fast-path index must be
// bitwise identical to the tape-path index — encodings, scores, and order —
// and a snapshot round trip (warm start) must preserve that.
TEST(FastEncoder, SearchIndexWarmColdParityAcrossThreads) {
  core::AsteriaConfig tape_config;
  tape_config.siamese.use_fast_encoder = false;
  core::AsteriaModel tape_model(tape_config);
  core::AsteriaConfig fast_config;
  fast_config.siamese.use_fast_encoder = true;
  core::AsteriaModel fast_model(fast_config);

  const auto features = MakeFeatures(24, 41);
  core::FunctionFeature query = features[3];

  core::SearchIndex tape_index(tape_model, 1);
  tape_index.AddAll(features);
  const auto tape_top = tape_index.TopK(query, 5);
  ASSERT_EQ(tape_top.size(), 5u);

  for (int threads : {1, 2, 8}) {
    core::SearchIndex cold_index(fast_model, threads);
    cold_index.AddAll(features);
    ASSERT_EQ(cold_index.size(), tape_index.size()) << threads << " threads";
    for (int i = 0; i < cold_index.size(); ++i) {
      ASSERT_TRUE(BitwiseEqual(tape_index.encoding(i), cold_index.encoding(i)))
          << "entry " << i << ", " << threads << " threads";
    }
    const auto cold_top = cold_index.TopK(query, 5);
    ASSERT_EQ(cold_top.size(), tape_top.size());
    for (std::size_t i = 0; i < cold_top.size(); ++i) {
      EXPECT_EQ(cold_top[i].index, tape_top[i].index);
      EXPECT_EQ(cold_top[i].score, tape_top[i].score);
    }

    // Warm start: snapshot the fast index and reload it.
    const std::string path = testing::TempDir() + "/fast_encoder_idx_" +
                             std::to_string(threads) + ".idx";
    std::string error;
    ASSERT_TRUE(cold_index.Save(path, &error)) << error;
    core::SearchIndex warm_index(fast_model, threads);
    ASSERT_TRUE(warm_index.Load(path, &error)) << error;
    const auto warm_top = warm_index.TopK(query, 5);
    ASSERT_EQ(warm_top.size(), tape_top.size());
    for (std::size_t i = 0; i < warm_top.size(); ++i) {
      EXPECT_EQ(warm_top[i].index, tape_top[i].index);
      EXPECT_EQ(warm_top[i].score, tape_top[i].score);
    }
  }
}

}  // namespace
}  // namespace asteria
