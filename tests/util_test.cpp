// util tests: RNG determinism/distributions, tables, flags, timers, and the
// ThreadPool static-partition determinism contract.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "util/failpoint.h"
#include "util/flags.h"
#include "util/mpmc_queue.h"
#include "util/rng.h"
#include "util/table.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace asteria::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, BoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(Rng, NextIntCoversInclusiveRange) {
  Rng rng(7);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1'000; ++i) seen.insert(rng.NextInt(-2, 2));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.begin(), -2);
  EXPECT_EQ(*seen.rbegin(), 2);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(3);
  double sum = 0.0;
  for (int i = 0; i < 10'000; ++i) {
    const double x = rng.NextDouble();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / 10'000, 0.5, 0.02);
}

TEST(Rng, GaussianMoments) {
  Rng rng(11);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 20'000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.NextGaussian();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(Rng, WeightedRespectsWeights) {
  Rng rng(5);
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 30'000; ++i) {
    ++counts[rng.NextWeighted({1.0, 2.0, 7.0})];
  }
  EXPECT_NEAR(counts[2] / 30'000.0, 0.7, 0.03);
  EXPECT_NEAR(counts[1] / 30'000.0, 0.2, 0.03);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(9);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto original = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(Table, AlignsAndEmitsCsv) {
  TextTable table({"name", "value"});
  table.AddRow({"alpha", "1"});
  table.AddRow({"b", "22,3"});
  const std::string text = table.ToString();
  EXPECT_NE(text.find("| alpha |"), std::string::npos);
  const std::string csv = table.ToCsv();
  EXPECT_NE(csv.find("\"22,3\""), std::string::npos);
}

TEST(Flags, ParsesAllTypes) {
  Flags flags;
  flags.DefineInt("n", 5, "count");
  flags.DefineDouble("rate", 0.5, "rate");
  flags.DefineBool("verbose", false, "verbosity");
  flags.DefineString("out", "x.csv", "output");
  const char* argv[] = {"prog", "--n=9", "--rate", "0.25", "--verbose",
                        "--out=y.csv"};
  ASSERT_TRUE(flags.Parse(6, const_cast<char**>(argv)));
  EXPECT_EQ(flags.GetInt("n"), 9);
  EXPECT_DOUBLE_EQ(flags.GetDouble("rate"), 0.25);
  EXPECT_TRUE(flags.GetBool("verbose"));
  EXPECT_EQ(flags.GetString("out"), "y.csv");
}

TEST(Flags, RejectsUnknownFlag) {
  Flags flags;
  flags.DefineInt("n", 5, "count");
  const char* argv[] = {"prog", "--bogus=1"};
  EXPECT_FALSE(flags.Parse(2, const_cast<char**>(argv)));
}

TEST(TimingStats, TracksMeanMinMax) {
  TimingStats stats;
  stats.Add(1.0);
  stats.Add(3.0);
  stats.Add(2.0);
  EXPECT_EQ(stats.count(), 3);
  EXPECT_DOUBLE_EQ(stats.mean(), 2.0);
  EXPECT_DOUBLE_EQ(stats.min(), 1.0);
  EXPECT_DOUBLE_EQ(stats.max(), 3.0);
}

TEST(TimingStats, FirstSampleSeedsMinAndMax) {
  // The first sample must become both bounds unconditionally — samples
  // above 0 (all durations) used to leave min stuck at the stale 0.
  TimingStats stats;
  stats.Add(5.0);
  EXPECT_DOUBLE_EQ(stats.min(), 5.0);
  EXPECT_DOUBLE_EQ(stats.max(), 5.0);

  TimingStats negative;
  negative.Add(-2.0);
  EXPECT_DOUBLE_EQ(negative.min(), -2.0);
  EXPECT_DOUBLE_EQ(negative.max(), -2.0);
}

TEST(Format, AdaptiveSeconds) {
  EXPECT_NE(FormatSeconds(3e-9).find("ns"), std::string::npos);
  EXPECT_NE(FormatSeconds(3e-6).find("us"), std::string::npos);
  EXPECT_NE(FormatSeconds(3e-3).find("ms"), std::string::npos);
  EXPECT_NE(FormatSeconds(3.0).find(" s"), std::string::npos);
}

TEST(ThreadPool, ShardRangesPartitionExactly) {
  for (std::int64_t n : {0, 1, 2, 7, 64, 1000}) {
    for (int max_shards : {1, 2, 3, 8, 17}) {
      const int shards = ThreadPool::ShardCount(n, max_shards);
      if (n == 0) {
        EXPECT_EQ(shards, 0);
        continue;
      }
      ASSERT_GE(shards, 1);
      ASSERT_LE(shards, max_shards);
      std::int64_t expected_begin = 0;
      for (int shard = 0; shard < shards; ++shard) {
        const auto [begin, end] = ThreadPool::ShardRange(n, shards, shard);
        EXPECT_EQ(begin, expected_begin) << n << "/" << shards;
        EXPECT_GT(end, begin);  // no empty shard
        expected_begin = end;
      }
      EXPECT_EQ(expected_begin, n);
    }
  }
}

TEST(ThreadPool, ParallelForRunsEveryIndexOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> counts(257);
  pool.ParallelFor(257, 4, [&](std::int64_t i) {
    counts[static_cast<std::size_t>(i)].fetch_add(1);
  });
  for (const auto& count : counts) EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPool, DeterministicAcrossThreadCounts) {
  // fn(i) writes only slot i, so any thread count must produce the same
  // vector — the contract SearchIndex/BuildCorpus rely on.
  auto run = [](int threads) {
    std::vector<std::uint64_t> out(1000);
    ParallelFor(1000, threads, [&](std::int64_t i) {
      out[static_cast<std::size_t>(i)] =
          Rng(Rng::DeriveSeed(99, static_cast<std::uint64_t>(i))).Next();
    });
    return out;
  };
  const auto serial = run(1);
  EXPECT_EQ(serial, run(2));
  EXPECT_EQ(serial, run(8));
}

TEST(ThreadPool, ReusableAcrossJobs) {
  ThreadPool pool(3);
  for (int round = 0; round < 50; ++round) {
    std::vector<int> out(64, -1);
    pool.ParallelFor(64, 3, [&](std::int64_t i) {
      out[static_cast<std::size_t>(i)] = static_cast<int>(i) + round;
    });
    for (int i = 0; i < 64; ++i) ASSERT_EQ(out[static_cast<std::size_t>(i)], i + round);
  }
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.ParallelFor(100, 4,
                                [](std::int64_t i) {
                                  if (i == 57) throw std::runtime_error("boom");
                                }),
               std::runtime_error);
  // Pool stays usable after an exception.
  std::atomic<std::int64_t> sum{0};
  pool.ParallelFor(10, 4, [&](std::int64_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 45);
}

TEST(ThreadPool, ShardCallbackSeesStaticBounds) {
  std::vector<std::pair<std::int64_t, std::int64_t>> ranges(8);
  ParallelForShards(100, 8, [&](std::int64_t begin, std::int64_t end, int shard) {
    ranges[static_cast<std::size_t>(shard)] = {begin, end};
  });
  for (int shard = 0; shard < 8; ++shard) {
    EXPECT_EQ(ranges[static_cast<std::size_t>(shard)],
              ThreadPool::ShardRange(100, 8, shard));
  }
}

TEST(Rng, DeriveSeedIsPureAndSpreads) {
  EXPECT_EQ(Rng::DeriveSeed(1, 0), Rng::DeriveSeed(1, 0));
  std::set<std::uint64_t> seen;
  for (std::uint64_t stream = 0; stream < 1000; ++stream) {
    seen.insert(Rng::DeriveSeed(1, stream));
  }
  EXPECT_EQ(seen.size(), 1000u);  // no collisions across streams
}

// ---------------------------------------------------------------------------
// Strict flag parsing: trailing garbage and overflow are rejected, not
// silently prefix-parsed.

TEST(Flags, RejectsTrailingGarbageOnInt) {
  Flags flags;
  flags.DefineInt("n", 5, "count");
  const char* argv[] = {"prog", "--n=12abc"};
  EXPECT_FALSE(flags.Parse(2, const_cast<char**>(argv)));
  EXPECT_EQ(flags.GetInt("n"), 5);  // default untouched
}

TEST(Flags, RejectsIntOverflowAndEmpty) {
  Flags flags;
  flags.DefineInt("n", 5, "count");
  const char* over[] = {"prog", "--n=99999999999999999999999"};
  EXPECT_FALSE(flags.Parse(2, const_cast<char**>(over)));
  const char* empty[] = {"prog", "--n="};
  EXPECT_FALSE(flags.Parse(2, const_cast<char**>(empty)));
}

TEST(Flags, RejectsGarbageAndNonFiniteDoubles) {
  Flags flags;
  flags.DefineDouble("beta", 0.5, "beta");
  const char* garbage[] = {"prog", "--beta=1e3x"};
  EXPECT_FALSE(flags.Parse(2, const_cast<char**>(garbage)));
  const char* inf[] = {"prog", "--beta=inf"};
  EXPECT_FALSE(flags.Parse(2, const_cast<char**>(inf)));
  const char* nan[] = {"prog", "--beta=nan"};
  EXPECT_FALSE(flags.Parse(2, const_cast<char**>(nan)));
  EXPECT_DOUBLE_EQ(flags.GetDouble("beta"), 0.5);
}

TEST(Flags, BoolAcceptsCanonicalSpellingsOnly) {
  Flags flags;
  flags.DefineBool("quiet", false, "quiet");
  const char* yes[] = {"prog", "--quiet=yes"};
  ASSERT_TRUE(flags.Parse(2, const_cast<char**>(yes)));
  EXPECT_TRUE(flags.GetBool("quiet"));
  const char* off[] = {"prog", "--quiet=0"};
  ASSERT_TRUE(flags.Parse(2, const_cast<char**>(off)));
  EXPECT_FALSE(flags.GetBool("quiet"));
  const char* garbage[] = {"prog", "--quiet=maybe"};
  EXPECT_FALSE(flags.Parse(2, const_cast<char**>(garbage)));
}

// ---------------------------------------------------------------------------
// Failpoint framework

class FailpointTest : public ::testing::Test {
 protected:
  void SetUp() override { ClearFailpoints(); }
  void TearDown() override { ClearFailpoints(); }
};

TEST_F(FailpointTest, DisarmedNeverFires) {
  static Failpoint fp("util_test.disarmed");
  for (int i = 0; i < 10; ++i) EXPECT_FALSE(fp.ShouldFail());
  EXPECT_EQ(fp.fire_count(), 0u);
}

TEST_F(FailpointTest, AlwaysOnceHitEveryModes) {
  static Failpoint fp("util_test.modes");
  std::string error;

  ASSERT_TRUE(ConfigureFailpoints("util_test.modes=always", &error)) << error;
  EXPECT_TRUE(fp.ShouldFail());
  EXPECT_TRUE(fp.ShouldFail());

  ClearFailpoints();
  ASSERT_TRUE(ConfigureFailpoints("util_test.modes=once", &error)) << error;
  EXPECT_TRUE(fp.ShouldFail());
  EXPECT_FALSE(fp.ShouldFail());
  EXPECT_FALSE(fp.ShouldFail());
  EXPECT_EQ(FailpointFireCount("util_test.modes"), 1u);

  ClearFailpoints();
  ASSERT_TRUE(ConfigureFailpoints("util_test.modes=hit:3", &error)) << error;
  EXPECT_FALSE(fp.ShouldFail());
  EXPECT_FALSE(fp.ShouldFail());
  EXPECT_TRUE(fp.ShouldFail());
  EXPECT_FALSE(fp.ShouldFail());

  ClearFailpoints();
  ASSERT_TRUE(ConfigureFailpoints("util_test.modes=every:2", &error)) << error;
  EXPECT_FALSE(fp.ShouldFail());
  EXPECT_TRUE(fp.ShouldFail());
  EXPECT_FALSE(fp.ShouldFail());
  EXPECT_TRUE(fp.ShouldFail());
  EXPECT_EQ(fp.fire_count(), 2u);

  ClearFailpoints();
  ASSERT_TRUE(ConfigureFailpoints("util_test.modes=off", &error)) << error;
  EXPECT_FALSE(fp.ShouldFail());
}

TEST_F(FailpointTest, MalformedSpecsAreRejectedWithReason) {
  std::string error;
  EXPECT_FALSE(ConfigureFailpoints("noequals", &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(ConfigureFailpoints("a=bogusmode", &error));
  EXPECT_FALSE(ConfigureFailpoints("a=hit:", &error));
  EXPECT_FALSE(ConfigureFailpoints("a=every:0", &error));
  EXPECT_FALSE(ConfigureFailpoints("a=hit:12x", &error));
  EXPECT_FALSE(ConfigureFailpoints("=always", &error));
}

TEST_F(FailpointTest, CommaSeparatedSpecArmsMultiplePoints) {
  static Failpoint fp_a("util_test.multi_a");
  static Failpoint fp_b("util_test.multi_b");
  std::string error;
  ASSERT_TRUE(ConfigureFailpoints(
      "util_test.multi_a=always,util_test.multi_b=once", &error))
      << error;
  EXPECT_TRUE(fp_a.ShouldFail());
  EXPECT_TRUE(fp_b.ShouldFail());
  EXPECT_FALSE(fp_b.ShouldFail());
  EXPECT_TRUE(fp_a.ShouldFail());
}

TEST_F(FailpointTest, UnknownNamesAreHeldPendingNotRejected) {
  // Arming before the point registers must succeed (the env var is parsed
  // before most translation units run their static initializers)...
  std::string error;
  ASSERT_TRUE(ConfigureFailpoints("util_test.pending_point=always", &error))
      << error;
  // ...and apply the moment the point registers.
  static Failpoint* late = new Failpoint("util_test.pending_point");
  EXPECT_TRUE(late->ShouldFail());
}

TEST_F(FailpointTest, ListContainsRegisteredPointsSorted) {
  static Failpoint fp("util_test.listed");
  (void)fp;
  const std::vector<std::string> names = ListFailpoints();
  bool found = false;
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (names[i] == "util_test.listed") found = true;
    if (i > 0) EXPECT_LE(names[i - 1], names[i]);
  }
  EXPECT_TRUE(found);
}

TEST_F(FailpointTest, ClearDisarmsAndZeroesCounters) {
  static Failpoint fp("util_test.cleared");
  std::string error;
  ASSERT_TRUE(ConfigureFailpoints("util_test.cleared=always", &error)) << error;
  EXPECT_TRUE(fp.ShouldFail());
  EXPECT_EQ(fp.fire_count(), 1u);
  ClearFailpoints();
  EXPECT_FALSE(fp.ShouldFail());
  EXPECT_EQ(fp.fire_count(), 0u);
  EXPECT_EQ(FailpointFireCount("util_test.cleared"), 0u);
}

TEST_F(FailpointTest, ServeFailpointSpecsAreHeldPending) {
  // The asteria-serve daemon registers serve.accept / serve.read /
  // serve.swap from its own translation unit, which this binary does not
  // link. Arming them must still succeed (held in the pending-spec table
  // until the points register), so `asteria-serve --failpoints=...` works
  // regardless of static-initialization order.
  std::string error;
  ASSERT_TRUE(ConfigureFailpoints(
      "serve.accept=once,serve.read=hit:3,serve.swap=always", &error))
      << error;
  // And none of them leak into the registered-point listing here.
  for (const std::string& name : ListFailpoints()) {
    EXPECT_NE(name.rfind("serve.", 0), 0u) << name;
  }
}

// ---------------------------------------------------------------------------
// MpmcQueue (the asteria-serve dispatch queue)

TEST(MpmcQueueTest, DeliversInFifoOrderSingleThreaded) {
  MpmcQueue<int> queue(8);
  EXPECT_EQ(queue.capacity(), 8u);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(queue.Push(i));
  EXPECT_EQ(queue.size(), 5u);
  int value = -1;
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(queue.Pop(&value));
    EXPECT_EQ(value, i);
  }
  EXPECT_FALSE(queue.TryPop(&value));
  EXPECT_EQ(queue.size(), 0u);
}

TEST(MpmcQueueTest, ZeroCapacityIsClampedToOne) {
  MpmcQueue<int> queue(0);
  EXPECT_EQ(queue.capacity(), 1u);
  EXPECT_TRUE(queue.Push(42));
  int value = 0;
  EXPECT_TRUE(queue.TryPop(&value));
  EXPECT_EQ(value, 42);
}

TEST(MpmcQueueTest, PushBlocksAtCapacityUntilAPopFreesASlot) {
  MpmcQueue<int> queue(1);
  ASSERT_TRUE(queue.Push(1));
  std::atomic<bool> second_pushed{false};
  std::thread producer([&] {
    EXPECT_TRUE(queue.Push(2));  // must block until the consumer pops
    second_pushed.store(true, std::memory_order_release);
  });
  // The producer cannot have completed while the queue is full. (A sleep
  // can only miss a violation, never fake one.)
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(second_pushed.load(std::memory_order_acquire));
  int value = 0;
  EXPECT_TRUE(queue.Pop(&value));
  EXPECT_EQ(value, 1);
  producer.join();
  EXPECT_TRUE(second_pushed.load(std::memory_order_acquire));
  EXPECT_TRUE(queue.Pop(&value));
  EXPECT_EQ(value, 2);
}

TEST(MpmcQueueTest, CloseDrainsQueuedItemsThenFails) {
  MpmcQueue<std::string> queue(4);
  ASSERT_TRUE(queue.Push("a"));
  ASSERT_TRUE(queue.Push("b"));
  queue.Close();
  queue.Close();  // idempotent
  EXPECT_TRUE(queue.closed());
  EXPECT_FALSE(queue.Push("dropped"));
  std::string value;
  EXPECT_TRUE(queue.Pop(&value));
  EXPECT_EQ(value, "a");
  EXPECT_TRUE(queue.Pop(&value));
  EXPECT_EQ(value, "b");
  EXPECT_FALSE(queue.Pop(&value));  // drained + closed
  EXPECT_FALSE(queue.TryPop(&value));
}

TEST(MpmcQueueTest, CloseWakesBlockedConsumersAndProducers) {
  // Liveness contract: Close() must wake a consumer blocked on empty and a
  // producer blocked on full; neither join may deadlock. (The consumer may
  // race a push and legitimately pop an item first — only the wakeup is
  // asserted, via the joins completing.)
  MpmcQueue<int> queue(1);
  std::thread consumer([&] {
    int value = 0;
    while (queue.Pop(&value)) {
    }
  });
  ASSERT_TRUE(queue.Push(7));
  std::thread producer([&] {
    (void)queue.Push(8);  // blocks on full unless the consumer drained 7
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  queue.Close();
  consumer.join();
  producer.join();
}

TEST(MpmcQueueTest, TryPushShedsInsteadOfBlocking) {
  MpmcQueue<int> queue(4);
  // No high-water mark: the full capacity is the admission limit.
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(queue.TryPush(i));
  EXPECT_FALSE(queue.TryPush(99));  // full: refuse, don't block
  EXPECT_EQ(queue.size(), 4u);
  int value = -1;
  EXPECT_TRUE(queue.Pop(&value));
  EXPECT_EQ(value, 0);
  EXPECT_TRUE(queue.TryPush(4));  // a pop re-opens admission
}

TEST(MpmcQueueTest, TryPushHonorsTheHighWaterMark) {
  MpmcQueue<int> queue(8);
  // A high-water mark below capacity sheds early, leaving headroom.
  EXPECT_TRUE(queue.TryPush(1, /*high_water=*/2));
  EXPECT_TRUE(queue.TryPush(2, /*high_water=*/2));
  EXPECT_FALSE(queue.TryPush(3, /*high_water=*/2));
  // A mark above capacity clamps to capacity.
  MpmcQueue<int> small(2);
  EXPECT_TRUE(small.TryPush(1, /*high_water=*/100));
  EXPECT_TRUE(small.TryPush(2, /*high_water=*/100));
  EXPECT_FALSE(small.TryPush(3, /*high_water=*/100));
}

TEST(MpmcQueueTest, TryPushFailsOnAClosedQueue) {
  MpmcQueue<int> queue(4);
  ASSERT_TRUE(queue.TryPush(1));
  queue.Close();
  EXPECT_FALSE(queue.TryPush(2));
  int value = 0;
  EXPECT_TRUE(queue.Pop(&value));  // queued items still drain after close
  EXPECT_EQ(value, 1);
}

TEST(MpmcQueueTest, ManyProducersManyConsumersDeliverEveryItemExactlyOnce) {
  // TSan-facing stress: 4 producers x 4 consumers over a tiny queue so
  // both condvars see real contention. Every pushed value must arrive at
  // exactly one consumer.
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int kPerProducer = 250;
  MpmcQueue<int> queue(3);
  std::vector<std::atomic<int>> seen(
      static_cast<std::size_t>(kProducers * kPerProducer));
  for (auto& count : seen) count.store(0);
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(queue.Push(p * kPerProducer + i));
      }
    });
  }
  std::atomic<int> consumed{0};
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      int value = -1;
      while (queue.Pop(&value)) {
        seen[static_cast<std::size_t>(value)].fetch_add(1);
        ++consumed;
      }
    });
  }
  for (int p = 0; p < kProducers; ++p) threads[static_cast<std::size_t>(p)].join();
  queue.Close();  // producers done: consumers drain the tail and exit
  for (std::size_t t = kProducers; t < threads.size(); ++t) threads[t].join();
  EXPECT_EQ(consumed.load(), kProducers * kPerProducer);
  for (const auto& count : seen) EXPECT_EQ(count.load(), 1);
}

}  // namespace
}  // namespace asteria::util
