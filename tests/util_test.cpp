// util tests: RNG determinism/distributions, tables, flags, timers.
#include <gtest/gtest.h>

#include <set>

#include "util/flags.h"
#include "util/rng.h"
#include "util/table.h"
#include "util/timer.h"

namespace asteria::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, BoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(Rng, NextIntCoversInclusiveRange) {
  Rng rng(7);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1'000; ++i) seen.insert(rng.NextInt(-2, 2));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.begin(), -2);
  EXPECT_EQ(*seen.rbegin(), 2);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(3);
  double sum = 0.0;
  for (int i = 0; i < 10'000; ++i) {
    const double x = rng.NextDouble();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / 10'000, 0.5, 0.02);
}

TEST(Rng, GaussianMoments) {
  Rng rng(11);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 20'000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.NextGaussian();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(Rng, WeightedRespectsWeights) {
  Rng rng(5);
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 30'000; ++i) {
    ++counts[rng.NextWeighted({1.0, 2.0, 7.0})];
  }
  EXPECT_NEAR(counts[2] / 30'000.0, 0.7, 0.03);
  EXPECT_NEAR(counts[1] / 30'000.0, 0.2, 0.03);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(9);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto original = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(Table, AlignsAndEmitsCsv) {
  TextTable table({"name", "value"});
  table.AddRow({"alpha", "1"});
  table.AddRow({"b", "22,3"});
  const std::string text = table.ToString();
  EXPECT_NE(text.find("| alpha |"), std::string::npos);
  const std::string csv = table.ToCsv();
  EXPECT_NE(csv.find("\"22,3\""), std::string::npos);
}

TEST(Flags, ParsesAllTypes) {
  Flags flags;
  flags.DefineInt("n", 5, "count");
  flags.DefineDouble("rate", 0.5, "rate");
  flags.DefineBool("verbose", false, "verbosity");
  flags.DefineString("out", "x.csv", "output");
  const char* argv[] = {"prog", "--n=9", "--rate", "0.25", "--verbose",
                        "--out=y.csv"};
  ASSERT_TRUE(flags.Parse(6, const_cast<char**>(argv)));
  EXPECT_EQ(flags.GetInt("n"), 9);
  EXPECT_DOUBLE_EQ(flags.GetDouble("rate"), 0.25);
  EXPECT_TRUE(flags.GetBool("verbose"));
  EXPECT_EQ(flags.GetString("out"), "y.csv");
}

TEST(Flags, RejectsUnknownFlag) {
  Flags flags;
  flags.DefineInt("n", 5, "count");
  const char* argv[] = {"prog", "--bogus=1"};
  EXPECT_FALSE(flags.Parse(2, const_cast<char**>(argv)));
}

TEST(TimingStats, TracksMeanMinMax) {
  TimingStats stats;
  stats.Add(1.0);
  stats.Add(3.0);
  stats.Add(2.0);
  EXPECT_EQ(stats.count(), 3);
  EXPECT_DOUBLE_EQ(stats.mean(), 2.0);
  EXPECT_DOUBLE_EQ(stats.min(), 1.0);
  EXPECT_DOUBLE_EQ(stats.max(), 3.0);
}

TEST(Format, AdaptiveSeconds) {
  EXPECT_NE(FormatSeconds(3e-9).find("ns"), std::string::npos);
  EXPECT_NE(FormatSeconds(3e-6).find("us"), std::string::npos);
  EXPECT_NE(FormatSeconds(3e-3).find("ms"), std::string::npos);
  EXPECT_NE(FormatSeconds(3.0).find(" s"), std::string::npos);
}

}  // namespace
}  // namespace asteria::util
