// Determinism tests for the parallel encode/search/generate paths: the
// same seed must produce bitwise-identical SearchIndex encodings, TopK
// orderings, and generated corpora for thread counts 1, 2, and 8 — the
// util::ThreadPool static-partition contract, observed end to end. Run
// these under -DASTERIA_SANITIZE=thread to also prove data-race freedom
// (scripts/check_sanitize.sh).
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "core/search_index.h"
#include "dataset/corpus.h"

namespace asteria {
namespace {

// Bitwise matrix equality — no tolerance: parallel must equal serial
// exactly, not approximately.
bool BitwiseEqual(const nn::Matrix& a, const nn::Matrix& b) {
  return a.SameShape(b) &&
         (a.size() == 0 ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

dataset::Corpus SmallCorpus(int threads) {
  dataset::CorpusConfig config;
  config.packages = 6;
  config.seed = 4242;
  config.threads = threads;
  return dataset::BuildCorpus(config);
}

void ExpectSameCorpus(const dataset::Corpus& a, const dataset::Corpus& b) {
  ASSERT_EQ(a.functions.size(), b.functions.size());
  EXPECT_EQ(a.index, b.index);
  EXPECT_EQ(a.binaries_per_isa, b.binaries_per_isa);
  EXPECT_EQ(a.functions_per_isa, b.functions_per_isa);
  EXPECT_EQ(a.filtered_small, b.filtered_small);
  for (std::size_t i = 0; i < a.functions.size(); ++i) {
    const dataset::CorpusFunction& fa = a.functions[i];
    const dataset::CorpusFunction& fb = b.functions[i];
    ASSERT_EQ(fa.package, fb.package);
    ASSERT_EQ(fa.function, fb.function);
    ASSERT_EQ(fa.isa, fb.isa);
    ASSERT_EQ(fa.ast_size, fb.ast_size);
    ASSERT_EQ(fa.callee_count, fb.callee_count);
    ASSERT_EQ(fa.callee_sizes, fb.callee_sizes);
    ASSERT_EQ(fa.instruction_count, fb.instruction_count);
    // Node-exact preprocessed tree equality.
    ASSERT_EQ(fa.preprocessed.size(), fb.preprocessed.size());
    ASSERT_EQ(fa.preprocessed.root(), fb.preprocessed.root());
    for (int n = 0; n < fa.preprocessed.size(); ++n) {
      const ast::BinaryNode& na = fa.preprocessed.node(n);
      const ast::BinaryNode& nb = fb.preprocessed.node(n);
      ASSERT_EQ(na.label, nb.label) << fa.package << "::" << fa.function;
      ASSERT_EQ(na.payload_bucket, nb.payload_bucket);
      ASSERT_EQ(na.left, nb.left);
      ASSERT_EQ(na.right, nb.right);
    }
  }
}

TEST(Determinism, CorpusIdenticalForThreadCounts) {
  const dataset::Corpus serial = SmallCorpus(1);
  ASSERT_GT(serial.functions.size(), 0u);
  for (int threads : {2, 8}) {
    SCOPED_TRACE(threads);
    ExpectSameCorpus(serial, SmallCorpus(threads));
  }
}

// Features from a small corpus, shared by the index tests below.
std::vector<core::FunctionFeature> CorpusFeatures(
    const dataset::Corpus& corpus) {
  std::vector<core::FunctionFeature> features;
  features.reserve(corpus.functions.size());
  for (const dataset::CorpusFunction& fn : corpus.functions) {
    core::FunctionFeature feature;
    feature.name = fn.package + "::" + fn.function;
    feature.tree = fn.preprocessed;
    feature.callee_count = fn.callee_count;
    features.push_back(std::move(feature));
  }
  return features;
}

TEST(Determinism, SearchIndexEncodingsIdenticalForThreadCounts) {
  const dataset::Corpus corpus = SmallCorpus(1);
  const auto features = CorpusFeatures(corpus);
  ASSERT_GT(features.size(), 10u);
  core::AsteriaConfig config;
  core::AsteriaModel model(config);

  core::SearchIndex serial(model, 1);
  serial.AddAll(features);
  for (int threads : {2, 8}) {
    SCOPED_TRACE(threads);
    core::SearchIndex parallel(model, threads);
    parallel.AddAll(features);
    ASSERT_EQ(parallel.size(), serial.size());
    for (int i = 0; i < serial.size(); ++i) {
      ASSERT_TRUE(BitwiseEqual(serial.encoding(i), parallel.encoding(i)))
          << "entry " << i;
    }
  }
}

TEST(Determinism, TopKOrderingIdenticalForThreadCounts) {
  const dataset::Corpus corpus = SmallCorpus(1);
  const auto features = CorpusFeatures(corpus);
  core::AsteriaConfig config;
  core::AsteriaModel model(config);

  core::SearchIndex serial(model, 1);
  serial.AddAll(features);
  // k around a shard boundary and k > corpus size both exercise the merge.
  for (const int k : {1, 5, static_cast<int>(features.size()) + 7}) {
    const auto expected = serial.TopK(features.front(), k);
    const auto expected_above =
        serial.AboveThreshold(features.front(), 0.25);
    for (int threads : {2, 8}) {
      SCOPED_TRACE(testing::Message() << "k=" << k << " threads=" << threads);
      core::SearchIndex parallel(model, threads);
      parallel.AddAll(features);
      const auto hits = parallel.TopK(features.front(), k);
      ASSERT_EQ(hits.size(), expected.size());
      for (std::size_t i = 0; i < hits.size(); ++i) {
        EXPECT_EQ(hits[i].index, expected[i].index) << "rank " << i;
        EXPECT_EQ(hits[i].name, expected[i].name);
        // Bitwise score equality — same summation order per entry.
        EXPECT_EQ(hits[i].score, expected[i].score);
      }
      const auto above = parallel.AboveThreshold(features.front(), 0.25);
      ASSERT_EQ(above.size(), expected_above.size());
      for (std::size_t i = 0; i < above.size(); ++i) {
        EXPECT_EQ(above[i].index, expected_above[i].index);
        EXPECT_EQ(above[i].score, expected_above[i].score);
      }
    }
  }
}

TEST(Determinism, SnapshotLoadIdenticalTopKForThreadCounts) {
  // The persistence acceptance bar: a saved-then-loaded SearchIndex must
  // return bitwise-identical TopK results (scores and ordering) to the
  // freshly built index, for every thread count — the static-partition
  // contract extended across a process boundary.
  const dataset::Corpus corpus = SmallCorpus(1);
  const auto features = CorpusFeatures(corpus);
  core::AsteriaConfig config;
  core::AsteriaModel model(config);

  core::SearchIndex fresh(model, 1);
  fresh.AddAll(features);
  const std::string path = testing::TempDir() + "determinism_index.snapshot";
  std::string error;
  ASSERT_TRUE(fresh.Save(path, &error)) << error;

  core::SearchIndex loaded(model, 1);
  ASSERT_TRUE(loaded.Load(path, &error)) << error;
  ASSERT_EQ(loaded.size(), fresh.size());
  for (int i = 0; i < fresh.size(); ++i) {
    ASSERT_TRUE(BitwiseEqual(fresh.encoding(i), loaded.encoding(i)))
        << "entry " << i;
  }

  const int k = 10;
  for (int threads : {1, 2, 8}) {
    SCOPED_TRACE(threads);
    fresh.set_threads(threads);
    loaded.set_threads(threads);
    for (std::size_t q = 0; q < features.size(); q += 11) {
      const auto expected = fresh.TopK(features[q], k);
      const auto hits = loaded.TopK(features[q], k);
      ASSERT_EQ(hits.size(), expected.size());
      for (std::size_t i = 0; i < hits.size(); ++i) {
        EXPECT_EQ(hits[i].index, expected[i].index) << "rank " << i;
        EXPECT_EQ(hits[i].name, expected[i].name);
        // Bitwise: the loaded encodings are the saved bytes, so the eq. (8)
        // replay must produce the exact same doubles.
        EXPECT_EQ(hits[i].score, expected[i].score);
      }
    }
  }
}

TEST(Determinism, TopKScoresDescendWithIndexTiebreak) {
  const dataset::Corpus corpus = SmallCorpus(1);
  const auto features = CorpusFeatures(corpus);
  core::AsteriaConfig config;
  core::AsteriaModel model(config);
  core::SearchIndex index(model, 8);
  index.AddAll(features);
  const auto hits = index.TopK(features.front(), index.size());
  ASSERT_EQ(hits.size(), features.size());
  for (std::size_t i = 1; i < hits.size(); ++i) {
    const bool ordered =
        hits[i - 1].score > hits[i].score ||
        (hits[i - 1].score == hits[i].score &&
         hits[i - 1].index < hits[i].index);
    EXPECT_TRUE(ordered) << "rank " << i;
  }
}

TEST(Determinism, GeneratorStreamsIndependentOfOrder) {
  // Package k's program depends only on (seed, k): building packages 0..5
  // must generate the same package-3 functions as a corpus of 4 packages.
  dataset::CorpusConfig big;
  big.packages = 6;
  big.seed = 99;
  dataset::CorpusConfig small = big;
  small.packages = 4;
  const dataset::Corpus corpus_big = dataset::BuildCorpus(big);
  const dataset::Corpus corpus_small = dataset::BuildCorpus(small);
  int compared = 0;
  for (const auto& [key, idx] : corpus_small.index) {
    const int other = corpus_big.Find(std::get<0>(key), std::get<1>(key),
                                      std::get<2>(key));
    ASSERT_GE(other, 0);
    const auto& fa = corpus_small.functions[static_cast<std::size_t>(idx)];
    const auto& fb = corpus_big.functions[static_cast<std::size_t>(other)];
    EXPECT_EQ(fa.ast_size, fb.ast_size);
    EXPECT_EQ(fa.callee_count, fb.callee_count);
    EXPECT_EQ(fa.instruction_count, fb.instruction_count);
    ++compared;
  }
  EXPECT_GT(compared, 0);
}

}  // namespace
}  // namespace asteria
