// Tests for the metrics registry and trace spans (src/util/metrics.h,
// src/util/trace.h): histogram bucket boundaries, snapshot determinism
// under ThreadPool at 1/2/8 threads, span nesting and cross-thread merge,
// JSON shape, pipeline-report publication, and failpoint trip counters.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "util/failpoint.h"
#include "util/metrics.h"
#include "util/pipeline_report.h"
#include "util/thread_pool.h"
#include "util/timer.h"
#include "util/trace.h"

namespace asteria::util {
namespace {

// Metrics under test are namespace-scope statics, exactly as production
// code declares them. ResetMetricsForTest() isolates the test cases.
Counter t_counter("test.counter");
Gauge t_gauge("test.gauge");
Histogram t_histogram("test.histogram");
Failpoint t_failpoint("test.metrics_failpoint");

class MetricsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ResetMetricsForTest();
    ClearFailpoints();
  }
  void TearDown() override {
    ResetMetricsForTest();
    ClearFailpoints();
  }
};

const CounterValue* FindCounter(const MetricsSnapshot& snapshot,
                                const std::string& name) {
  for (const CounterValue& counter : snapshot.counters) {
    if (counter.name == name) return &counter;
  }
  return nullptr;
}

const HistogramValue* FindHistogram(const MetricsSnapshot& snapshot,
                                    const std::string& name) {
  for (const HistogramValue& histogram : snapshot.histograms) {
    if (histogram.name == name) return &histogram;
  }
  return nullptr;
}

const StageTiming* FindSpan(const MetricsSnapshot& snapshot,
                            const std::string& stage) {
  for (const StageTiming& span : snapshot.spans) {
    if (span.stage == stage) return &span;
  }
  return nullptr;
}

TEST_F(MetricsTest, HistogramBucketBoundaries) {
  // Bucket 0 holds exactly the value 0; bucket i >= 1 holds [2^(i-1), 2^i).
  EXPECT_EQ(Histogram::BucketIndex(0), 0);
  EXPECT_EQ(Histogram::BucketIndex(1), 1);
  EXPECT_EQ(Histogram::BucketIndex(2), 2);
  EXPECT_EQ(Histogram::BucketIndex(3), 2);
  EXPECT_EQ(Histogram::BucketIndex(4), 3);
  EXPECT_EQ(Histogram::BucketIndex(7), 3);
  EXPECT_EQ(Histogram::BucketIndex(8), 4);
  EXPECT_EQ(Histogram::BucketIndex(1023), 10);
  EXPECT_EQ(Histogram::BucketIndex(1024), 11);
  EXPECT_EQ(Histogram::BucketIndex(~std::uint64_t{0}), 64);

  EXPECT_EQ(Histogram::BucketLowerBound(0), 0u);
  EXPECT_EQ(Histogram::BucketLowerBound(1), 1u);
  EXPECT_EQ(Histogram::BucketLowerBound(2), 2u);
  EXPECT_EQ(Histogram::BucketLowerBound(3), 4u);
  EXPECT_EQ(Histogram::BucketLowerBound(64), std::uint64_t{1} << 63);

  // Every value lands in the bucket whose range contains it.
  for (int bucket = 1; bucket < Histogram::kBuckets; ++bucket) {
    const std::uint64_t lo = Histogram::BucketLowerBound(bucket);
    EXPECT_EQ(Histogram::BucketIndex(lo), bucket) << "bucket " << bucket;
    EXPECT_EQ(Histogram::BucketIndex(lo + (lo - 1)), bucket)
        << "bucket " << bucket;
  }
}

TEST_F(MetricsTest, HistogramSnapshotValues) {
  t_histogram.Observe(0);
  t_histogram.Observe(1);
  t_histogram.Observe(5);
  t_histogram.Observe(5);
  t_histogram.Observe(300);

  const MetricsSnapshot snapshot = SnapshotMetrics();
  const HistogramValue* h = FindHistogram(snapshot, "test.histogram");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 5u);
  EXPECT_EQ(h->sum, 311u);
  EXPECT_EQ(h->min, 0u);
  EXPECT_EQ(h->max, 300u);
  // Non-empty buckets only, ascending by lower bound:
  // 0 -> 1, [1,2) -> 1, [4,8) -> 2, [256,512) -> 1.
  const std::vector<std::pair<std::uint64_t, std::uint64_t>> expected = {
      {0, 1}, {1, 1}, {4, 2}, {256, 1}};
  EXPECT_EQ(h->buckets, expected);
}

TEST_F(MetricsTest, CounterAndHistogramDeterministicAcrossThreadCounts) {
  // The same work at 1, 2, and 8 threads must produce identical counter
  // values and identical per-bucket tallies (values here are a function of
  // the item index, not of scheduling).
  constexpr std::int64_t kItems = 1000;
  std::vector<std::uint64_t> counter_values;
  std::vector<std::vector<std::pair<std::uint64_t, std::uint64_t>>> buckets;
  for (const int threads : {1, 2, 8}) {
    ResetMetricsForTest();
    ParallelFor(kItems, threads, [](std::int64_t i) {
      t_counter.Add(static_cast<std::uint64_t>(i % 3));
      t_histogram.Observe(static_cast<std::uint64_t>(i * 7 % 1000));
    });
    const MetricsSnapshot snapshot = SnapshotMetrics();
    const CounterValue* c = FindCounter(snapshot, "test.counter");
    const HistogramValue* h = FindHistogram(snapshot, "test.histogram");
    ASSERT_NE(c, nullptr);
    ASSERT_NE(h, nullptr);
    EXPECT_EQ(h->count, static_cast<std::uint64_t>(kItems));
    counter_values.push_back(c->value);
    buckets.push_back(h->buckets);
  }
  EXPECT_EQ(counter_values[0], counter_values[1]);
  EXPECT_EQ(counter_values[0], counter_values[2]);
  EXPECT_EQ(buckets[0], buckets[1]);
  EXPECT_EQ(buckets[0], buckets[2]);
}

TEST_F(MetricsTest, GaugeLastWriteWinsAndUnsetGaugesHidden) {
  // Unset gauges stay out of the snapshot entirely.
  MetricsSnapshot before = SnapshotMetrics();
  for (const GaugeValue& gauge : before.gauges) {
    EXPECT_NE(gauge.name, "test.gauge");
  }
  t_gauge.Set(1.5);
  t_gauge.Set(-2.25);
  MetricsSnapshot after = SnapshotMetrics();
  ASSERT_EQ(after.gauges.size(), before.gauges.size() + 1);
  bool found = false;
  for (const GaugeValue& gauge : after.gauges) {
    if (gauge.name == "test.gauge") {
      EXPECT_DOUBLE_EQ(gauge.value, -2.25);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(MetricsTest, SpanNestingChargesBothStages) {
  {
    ASTERIA_SPAN("outer-stage");
    {
      ASTERIA_SPAN("inner-stage");
      ASTERIA_SPAN("inner-stage");  // same stage twice in one scope
    }
  }
  const MetricsSnapshot snapshot = SnapshotMetrics();
  const StageTiming* outer = FindSpan(snapshot, "outer-stage");
  const StageTiming* inner = FindSpan(snapshot, "inner-stage");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(outer->count, 1u);
  EXPECT_EQ(inner->count, 2u);
  // The outer span covers the inner spans' lifetime.
  EXPECT_GE(outer->total_nanos, inner->total_nanos / 2);
}

TEST_F(MetricsTest, SpanCountsMergeAcrossThreads) {
  constexpr std::int64_t kItems = 64;
  for (const int threads : {1, 2, 8}) {
    ResetSpansForTest();
    ParallelFor(kItems, threads,
                [](std::int64_t) { ASTERIA_SPAN("merge-stage"); });
    const std::vector<StageTiming> spans = SnapshotSpans();
    std::uint64_t count = 0;
    for (const StageTiming& span : spans) {
      if (span.stage == "merge-stage") count = span.count;
    }
    EXPECT_EQ(count, static_cast<std::uint64_t>(kItems))
        << "threads=" << threads;
  }
}

TEST_F(MetricsTest, PipelineReportPublishesOnSummary) {
  PipelineReport report;
  report.stage = "test-stage";
  report.AddOk();
  report.AddOk();
  report.AddSkipped();
  report.AddFailed("item 3: broke");
  (void)report.Summary();  // Summary() publishes
  (void)report.Summary();  // replace-per-stage: no double counting

  const MetricsSnapshot snapshot = SnapshotMetrics();
  bool found = false;
  for (const PipelineStageValue& stage : snapshot.pipeline) {
    if (stage.stage != "test-stage") continue;
    found = true;
    EXPECT_EQ(stage.ok, 2);
    EXPECT_EQ(stage.skipped, 1);
    EXPECT_EQ(stage.failed, 1);
    EXPECT_EQ(stage.first_failure, "item 3: broke");
  }
  EXPECT_TRUE(found);
}

TEST_F(MetricsTest, FailpointTripCountsSurfaceAsCounters) {
  // Unfired failpoints stay out of the snapshot.
  const MetricsSnapshot before = SnapshotMetrics();
  EXPECT_EQ(FindCounter(before, "failpoint.test.metrics_failpoint"), nullptr);

  std::string error;
  ASSERT_TRUE(ConfigureFailpoints("test.metrics_failpoint=every:2", &error))
      << error;
  int fired = 0;
  for (int i = 0; i < 10; ++i) {
    if (t_failpoint.ShouldFail()) ++fired;
  }
  EXPECT_EQ(fired, 5);
  const MetricsSnapshot after = SnapshotMetrics();
  const CounterValue* c =
      FindCounter(after, "failpoint.test.metrics_failpoint");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->value, 5u);
}

TEST_F(MetricsTest, JsonShape) {
  t_counter.Add(7);
  t_gauge.Set(0.5);
  t_histogram.Observe(3);
  { ASTERIA_SPAN("json-stage"); }
  PipelineReport report;
  report.stage = "json-pipe";
  report.AddOk();
  PublishPipelineReport(report);

  const std::string json = SnapshotMetrics().ToJson();
  // Fixed schema marker and all five sections, in order.
  EXPECT_NE(json.find("\"schema\": \"asteria.metrics.v1\""), std::string::npos);
  const std::size_t counters_at = json.find("\"counters\": {");
  const std::size_t gauges_at = json.find("\"gauges\": {");
  const std::size_t histograms_at = json.find("\"histograms\": {");
  const std::size_t spans_at = json.find("\"spans\": {");
  const std::size_t pipeline_at = json.find("\"pipeline\": {");
  ASSERT_NE(counters_at, std::string::npos);
  ASSERT_NE(gauges_at, std::string::npos);
  ASSERT_NE(histograms_at, std::string::npos);
  ASSERT_NE(spans_at, std::string::npos);
  ASSERT_NE(pipeline_at, std::string::npos);
  EXPECT_LT(counters_at, gauges_at);
  EXPECT_LT(gauges_at, histograms_at);
  EXPECT_LT(histograms_at, spans_at);
  EXPECT_LT(spans_at, pipeline_at);

  EXPECT_NE(json.find("\"test.counter\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"test.gauge\": 0.5"), std::string::npos);
  // Histogram value 3 lands in bucket [2,4).
  EXPECT_NE(json.find("\"buckets\": {\"2\": 1}"), std::string::npos);
  EXPECT_NE(json.find("\"json-stage\""), std::string::npos);
  EXPECT_NE(json.find("\"json-pipe\""), std::string::npos);
  EXPECT_NE(json.find("\"first_failure\": \"\""), std::string::npos);

  // Balanced braces and a trailing newline (shell-friendly document).
  int depth = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (in_string) {
      if (c == '\\') ++i;
      else if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') in_string = true;
    if (c == '{') ++depth;
    if (c == '}') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  ASSERT_FALSE(json.empty());
  EXPECT_EQ(json.back(), '\n');
}

TEST_F(MetricsTest, JsonEscapesReasonStrings) {
  PipelineReport report;
  report.stage = "escape-stage";
  report.AddFailed("line1\nline2 \"quoted\" \\slash");
  PublishPipelineReport(report);
  const std::string json = SnapshotMetrics().ToJson();
  EXPECT_NE(json.find("line1\\nline2 \\\"quoted\\\" \\\\slash"),
            std::string::npos);
}

TEST_F(MetricsTest, TextTableMentionsEverySection) {
  t_counter.Increment();
  t_gauge.Set(2.0);
  t_histogram.Observe(9);
  { ASTERIA_SPAN("text-stage"); }
  const std::string text = SnapshotMetrics().ToText();
  EXPECT_NE(text.find("test.counter"), std::string::npos);
  EXPECT_NE(text.find("test.gauge"), std::string::npos);
  EXPECT_NE(text.find("test.histogram"), std::string::npos);
  EXPECT_NE(text.find("text-stage"), std::string::npos);
}

TEST_F(MetricsTest, ResetClearsEverything) {
  t_counter.Add(3);
  t_gauge.Set(1.0);
  t_histogram.Observe(2);
  { ASTERIA_SPAN("reset-stage"); }
  ResetMetricsForTest();
  const MetricsSnapshot snapshot = SnapshotMetrics();
  const CounterValue* c = FindCounter(snapshot, "test.counter");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->value, 0u);
  const HistogramValue* h = FindHistogram(snapshot, "test.histogram");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 0u);
  EXPECT_TRUE(h->buckets.empty());
  const StageTiming* span = FindSpan(snapshot, "reset-stage");
  if (span != nullptr) EXPECT_EQ(span->count, 0u);
  for (const GaugeValue& gauge : snapshot.gauges) {
    EXPECT_NE(gauge.name, "test.gauge");
  }
}

TEST_F(MetricsTest, ScalarStatsSeedsMinMaxFromFirstSample) {
  // Regression: the old TimingStats compared against stale min_/max_ state
  // before checking count_ == 1. The first sample must seed both bounds.
  ScalarStats stats;
  stats.Add(5.0);
  EXPECT_DOUBLE_EQ(stats.min(), 5.0);
  EXPECT_DOUBLE_EQ(stats.max(), 5.0);
  stats.Add(7.0);
  stats.Add(3.0);
  EXPECT_EQ(stats.count(), 3);
  EXPECT_DOUBLE_EQ(stats.min(), 3.0);
  EXPECT_DOUBLE_EQ(stats.max(), 7.0);
  EXPECT_DOUBLE_EQ(stats.sum(), 15.0);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);

  // Negative-only samples: the old code would have kept min at 0.
  ScalarStats negative;
  negative.Add(-4.0);
  EXPECT_DOUBLE_EQ(negative.min(), -4.0);
  EXPECT_DOUBLE_EQ(negative.max(), -4.0);

  // TimingStats is now an alias of ScalarStats.
  TimingStats timing;
  timing.Add(-1.0);
  EXPECT_DOUBLE_EQ(timing.max(), -1.0);
}

TEST_F(MetricsTest, ConcurrentMixedWritersAreSafe) {
  // TSan coverage: counters, gauges, histograms, and spans hammered from
  // many threads while snapshots race against the writers.
  constexpr std::int64_t kItems = 2000;
  ParallelFor(kItems, 8, [](std::int64_t i) {
    ASTERIA_SPAN("hammer-stage");
    t_counter.Increment();
    t_gauge.Set(static_cast<double>(i));
    t_histogram.Observe(static_cast<std::uint64_t>(i));
    if (i % 256 == 0) (void)SnapshotMetrics();
  });
  const MetricsSnapshot snapshot = SnapshotMetrics();
  const CounterValue* c = FindCounter(snapshot, "test.counter");
  const HistogramValue* h = FindHistogram(snapshot, "test.histogram");
  const StageTiming* span = FindSpan(snapshot, "hammer-stage");
  ASSERT_NE(c, nullptr);
  ASSERT_NE(h, nullptr);
  ASSERT_NE(span, nullptr);
  EXPECT_EQ(c->value, static_cast<std::uint64_t>(kItems));
  EXPECT_EQ(h->count, static_cast<std::uint64_t>(kItems));
  EXPECT_EQ(h->min, 0u);
  EXPECT_EQ(h->max, static_cast<std::uint64_t>(kItems - 1));
  EXPECT_EQ(span->count, static_cast<std::uint64_t>(kItems));
}

TEST_F(MetricsTest, HistogramPercentileMath) {
  // Percentile() interpolates toward each bucket's UPPER bound: with only
  // bucket membership known, the upper bound is the honest worst-case
  // estimate (docs/OBSERVABILITY.md). Verified against a hand-built value.
  HistogramValue h;
  EXPECT_DOUBLE_EQ(h.Percentile(0.5), 0.0);  // empty histogram

  // 4 observations: one 0, two in [4,8), one in [256,512).
  h.count = 4;
  h.buckets = {{0, 1}, {4, 2}, {256, 1}};
  EXPECT_DOUBLE_EQ(h.Percentile(0.25), 0.0);  // rank 1: the exact zero
  EXPECT_DOUBLE_EQ(h.Percentile(0.50), 6.0);  // rank 2: halfway into [4,8)
  EXPECT_DOUBLE_EQ(h.Percentile(0.75), 8.0);  // rank 3: top of [4,8)
  EXPECT_DOUBLE_EQ(h.Percentile(1.00), 512.0);  // rank 4: top of [256,512)
  // Out-of-range q clamps instead of misbehaving.
  EXPECT_DOUBLE_EQ(h.Percentile(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(h.Percentile(2.0), 512.0);

  // A single observation puts every percentile at its bucket's ceiling.
  HistogramValue single;
  single.count = 1;
  single.buckets = {{4, 1}};
  EXPECT_DOUBLE_EQ(single.Percentile(0.50), 8.0);
  EXPECT_DOUBLE_EQ(single.Percentile(0.99), 8.0);
}

TEST_F(MetricsTest, PercentilesPopulateSnapshotsAndJson) {
  for (std::uint64_t i = 1; i <= 100; ++i) t_histogram.Observe(i);
  const MetricsSnapshot snapshot = SnapshotMetrics();
  const HistogramValue* h = FindHistogram(snapshot, "test.histogram");
  ASSERT_NE(h, nullptr);
  EXPECT_GT(h->p50, 0.0);
  EXPECT_LE(h->p50, h->p95);
  EXPECT_LE(h->p95, h->p99);
  EXPECT_LE(h->p99, static_cast<double>(h->max) * 2.0);  // upper-bound bias
  // The ladder rides along in both renderings, so `asteria-cli stats` and
  // the determinism-filtered JSON dumps see the same numbers.
  const std::string json = snapshot.ToJson();
  EXPECT_NE(json.find("\"p50\":"), std::string::npos);
  EXPECT_NE(json.find("\"p95\":"), std::string::npos);
  EXPECT_NE(json.find("\"p99\":"), std::string::npos);
  const std::string text = snapshot.ToText();
  EXPECT_NE(text.find("p50"), std::string::npos);
  EXPECT_NE(text.find("p99"), std::string::npos);
}

TEST_F(MetricsTest, SpanOverflowSurfacesAsTraceDropped) {
  // A thread that records more distinct stage names than its profile holds
  // (kMaxStages) must drop the surplus and say so via the synthetic
  // "trace.dropped" stage — never crash, never overwrite a claimed slot.
  // The names are leaked on purpose: profiles keep the pointers forever,
  // matching the string-literal contract.
  auto* names = new std::vector<std::string>();
  names->reserve(internal::StageProfile::kMaxStages + 1);
  for (int i = 0; i <= internal::StageProfile::kMaxStages; ++i) {
    names->push_back("overflow-stage-" + std::to_string(i));
  }
  std::thread recorder([names] {
    internal::StageProfile& profile = internal::ThreadStageProfile();
    for (const std::string& name : *names) profile.Record(name.c_str(), 1);
  });
  recorder.join();

  const std::vector<StageTiming> spans = SnapshotSpans();
  std::uint64_t dropped = 0;
  std::uint64_t first = 0;
  bool last_present = false;
  for (const StageTiming& span : spans) {
    if (span.stage == "trace.dropped") dropped = span.count;
    if (span.stage == names->front()) first = span.count;
    if (span.stage == names->back()) last_present = true;
  }
  EXPECT_EQ(first, 1u);          // slot 0 claimed and counted
  EXPECT_FALSE(last_present);    // the 65th name never got a slot...
  EXPECT_EQ(dropped, 1u);        // ...and was counted as dropped instead
}

}  // namespace
}  // namespace asteria::util
