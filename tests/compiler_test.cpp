// Compiler + VM tests: lowering invariants, pass behaviour, and the core
// differential property — for every program, the interpreter and the VM on
// all four ISAs agree on results and array side effects.
#include <gtest/gtest.h>

#include "binary/disasm.h"
#include "binary/vm.h"
#include "compiler/compile.h"
#include "compiler/lower.h"
#include "compiler/passes.h"
#include "minic/interp.h"
#include "minic/parser.h"
#include "minic/sema.h"

namespace asteria::compiler {
namespace {

using binary::Isa;
using minic::ArgValue;

minic::Program MustParse(const std::string& source) {
  minic::Program program;
  std::string error;
  EXPECT_TRUE(minic::Parse(source, &program, &error)) << error;
  EXPECT_TRUE(minic::Check(program, &error)) << error;
  return program;
}

// Runs `fn(args)` through the interpreter and through the VM for every ISA,
// and checks all five agree.
void ExpectAllAgree(const std::string& source, const std::string& fn,
                    std::vector<ArgValue> args,
                    const CompileOptions& options = CompileOptions{}) {
  minic::Program program = MustParse(source);
  minic::Interpreter interp(program);
  const auto expected = interp.Call(fn, args);
  ASSERT_TRUE(expected.ok) << expected.trap;
  for (int i = 0; i < binary::kNumIsas; ++i) {
    const Isa isa = static_cast<Isa>(i);
    const CompileResult compiled =
        CompileProgram(program, isa, "test", options);
    ASSERT_TRUE(compiled.ok) << compiled.error;
    binary::Vm vm(compiled.module);
    const auto actual = vm.Call(fn, args);
    ASSERT_TRUE(actual.ok)
        << "ISA " << binary::IsaName(isa) << ": " << actual.trap << "\n"
        << binary::DisasmModule(compiled.module);
    EXPECT_EQ(actual.value, expected.value)
        << "ISA " << binary::IsaName(isa) << "\n"
        << binary::DisasmModule(compiled.module);
    EXPECT_EQ(actual.arrays, expected.arrays)
        << "ISA " << binary::IsaName(isa);
  }
}

TEST(Lowering, ProducesValidIr) {
  minic::Program program = MustParse(R"(
    int f(int n) {
      int s = 0;
      int i;
      for (i = 0; i < n; i++) { if (i % 2 == 0) { s += i; } }
      return s;
    }
  )");
  IrProgram ir;
  std::string error;
  ASSERT_TRUE(LowerProgram(program, &ir, &error)) << error;
  ASSERT_EQ(ir.functions.size(), 1u);
  EXPECT_GT(ir.functions[0].blocks.size(), 3u);
}

TEST(Lowering, SwitchBecomesJumpTableWhenDense) {
  minic::Program program = MustParse(R"(
    int f(int n) {
      switch (n) {
        case 1: return 1;
        case 2: return 2;
        case 3: return 3;
        case 4: return 4;
        case 5: return 5;
        default: return 0;
      }
    }
  )");
  IrProgram ir;
  std::string error;
  ASSERT_TRUE(LowerProgram(program, &ir, &error)) << error;
  EXPECT_EQ(ir.functions[0].jump_tables.size(), 1u);
}

TEST(Lowering, SparseSwitchBecomesCompareChain) {
  minic::Program program = MustParse(R"(
    int f(int n) {
      switch (n) {
        case 1: return 1;
        case 1000: return 2;
        case 100000: return 3;
        case 5000000: return 4;
        default: return 0;
      }
    }
  )");
  IrProgram ir;
  std::string error;
  ASSERT_TRUE(LowerProgram(program, &ir, &error)) << error;
  EXPECT_TRUE(ir.functions[0].jump_tables.empty());
}

TEST(Passes, DeadCodeEliminationRemovesUnusedDefs) {
  minic::Program program = MustParse("int f(int a) { int unused = a * 99; return a; }");
  IrProgram ir;
  std::string error;
  ASSERT_TRUE(LowerProgram(program, &ir, &error)) << error;
  const std::size_t before = ir.functions[0].TotalInsns();
  CopyPropagate(&ir.functions[0]);
  EliminateDeadCode(&ir.functions[0]);
  EXPECT_LT(ir.functions[0].TotalInsns(), before);
}

TEST(Passes, IfConvertFiresOnArmDiamonds) {
  minic::Program program = MustParse(
      "int f(int a, int b) { int m = 0; if (a < b) { m = a; } else { m = b; } return m; }");
  IrProgram ir;
  std::string error;
  ASSERT_TRUE(LowerProgram(program, &ir, &error)) << error;
  CopyPropagate(&ir.functions[0]);
  EliminateDeadCode(&ir.functions[0]);
  EXPECT_GE(IfConvert(&ir.functions[0]), 1);
  // After conversion the CFG shrinks (blocks merged), mirroring Fig. 2.
  EXPECT_LE(ir.functions[0].blocks.size(), 3u);
}

TEST(Passes, StrengthReductionRewritesPowerOfTwoMul) {
  minic::Program program = MustParse("int f(int a) { return a * 8; }");
  IrProgram ir;
  std::string error;
  ASSERT_TRUE(LowerProgram(program, &ir, &error)) << error;
  FoldImmediates(&ir.functions[0], binary::GetIsaSpec(Isa::kPpc));
  StrengthReduceMul(&ir.functions[0]);
  bool has_shift = false, has_mul = false;
  for (const IrBlock& block : ir.functions[0].blocks) {
    for (const IrInsn& insn : block.insns) {
      if (insn.op == Opcode::kShlI) has_shift = true;
      if (insn.op == Opcode::kMulI || insn.op == Opcode::kMul) has_mul = true;
    }
  }
  EXPECT_TRUE(has_shift);
  EXPECT_FALSE(has_mul);
}

TEST(Passes, InlinerInlinesSmallLeaf) {
  minic::Program program = MustParse(R"(
    int tiny(int a) { return a + 1; }
    int f(int n) { return tiny(n) * 2; }
  )");
  IrProgram ir;
  std::string error;
  ASSERT_TRUE(LowerProgram(program, &ir, &error)) << error;
  const int inlined =
      InlineSmallCalls(&ir, binary::GetIsaSpec(Isa::kX64), -1);
  EXPECT_EQ(inlined, 1);
  ASSERT_TRUE(ir.functions[1].Validate(&error)) << error;
  EXPECT_TRUE(ir.functions[1].IsLeaf());
}

// ---- differential tests -------------------------------------------------

TEST(Differential, Arithmetic) {
  ExpectAllAgree(
      "int f(int a, int b) { return (a * 3 - b / 2) % 7 + (a << 2) - (b >> 1) + (a & b) - (a | b) + (a ^ b); }",
      "f", {ArgValue::Scalar(1234), ArgValue::Scalar(-57)});
}

TEST(Differential, DivModByZero) {
  ExpectAllAgree("int f(int a) { return a / 0 + a % 0 + 0 / 1; }", "f",
                 {ArgValue::Scalar(99)});
}

TEST(Differential, Comparisons) {
  ExpectAllAgree(
      "int f(int a, int b) { return (a<b)*32 + (a>b)*16 + (a<=b)*8 + (a>=b)*4 + (a==b)*2 + (a!=b); }",
      "f", {ArgValue::Scalar(3), ArgValue::Scalar(3)});
}

TEST(Differential, ShortCircuitSideEffects) {
  ExpectAllAgree(R"(
    int f(int a) {
      int hits = 0;
      int r1 = (a > 0) || (hits += 1);
      int r2 = (a > 0) && (hits += 10);
      return hits * 100 + r1 * 10 + r2;
    }
  )",
                 "f", {ArgValue::Scalar(-3)});
}

TEST(Differential, LoopsArraysAndCalls) {
  ExpectAllAgree(R"(
    int sum(int a[], int n) {
      int s = 0;
      int i;
      for (i = 0; i < n; i++) { s += a[i]; }
      return s;
    }
    int f(int n) {
      int buf[16];
      int i = 0;
      while (i < 16) { buf[i] = i * i - 3; i++; }
      return sum(buf, n);
    }
  )",
                 "f", {ArgValue::Scalar(12)});
}

TEST(Differential, NestedLoopsBreakContinue) {
  ExpectAllAgree(R"(
    int f(int n) {
      int s = 0;
      int i;
      int j;
      for (i = 0; i < n; i++) {
        for (j = 0; j < n; j++) {
          if (j == 3) { continue; }
          if (i * j > 20) { break; }
          s += i * 10 + j;
        }
      }
      return s;
    }
  )",
                 "f", {ArgValue::Scalar(7)});
}

TEST(Differential, SwitchDenseAndSparse) {
  ExpectAllAgree(R"(
    int dense(int n) {
      switch (n) {
        case 0: return 5;
        case 1: return 6;
        case 2: return 7;
        case 3: return 8;
        case 4: return 9;
        default: return -1;
      }
    }
    int sparse(int n) {
      switch (n) {
        case 10: return 1;
        case 2000: return 2;
        default: return 3;
      }
    }
    int f(int n) {
      int s = 0;
      int i;
      for (i = -1; i < 7; i++) { s = s * 10 + dense(i); }
      return s + sparse(n) * 1000000000;
    }
  )",
                 "f", {ArgValue::Scalar(2000)});
}

TEST(Differential, GotoCleanupPattern) {
  ExpectAllAgree(R"(
    int f(int n) {
      int r = 0;
      if (n < 0) { goto fail; }
      if (n > 100) { goto fail; }
      r = n * 2;
      goto done;
      fail: r = -1;
      done: return r;
    }
  )",
                 "f", {ArgValue::Scalar(-5)});
}

TEST(Differential, Recursion) {
  ExpectAllAgree(
      "int fib(int n) { if (n < 2) { return n; } return fib(n-1) + fib(n-2); }",
      "fib", {ArgValue::Scalar(12)});
}

TEST(Differential, ArrayWrapSemantics) {
  ExpectAllAgree(R"(
    int f(int k) {
      int a[8];
      int i;
      for (i = 0; i < 8; i++) { a[i] = i; }
      return a[k] * 100 + a[-k] * 10 + a[k * 7919];
    }
  )",
                 "f", {ArgValue::Scalar(13)});
}

TEST(Differential, ArrayOutParams) {
  ExpectAllAgree(R"(
    int rotate(int a[], int n) {
      int first = a[0];
      int i;
      for (i = 0; i + 1 < n; i++) { a[i] = a[i + 1]; }
      a[n - 1] = first;
      return n;
    }
  )",
                 "rotate", {ArgValue::Array({1, 2, 3, 4, 5}), ArgValue::Scalar(5)});
}

TEST(Differential, StringArguments) {
  ExpectAllAgree(R"(
    int strlen_(int s[]) { int n = 0; while (s[n] != 0) { n++; } return n; }
    int f() { return strlen_("hello world") * 10 + "xy"; }
  )",
                 "f", {});
}

TEST(Differential, IncDecEverywhere) {
  ExpectAllAgree(R"(
    int f() {
      int a[4];
      int x = 5;
      a[0] = 1;
      a[x++ - 5] += 3;
      int y = ++x;
      a[1] = y-- + x;
      return a[0] * 1000 + a[1] * 10 + x + y;
    }
  )",
                 "f", {});
}

TEST(Differential, SideEffectEvaluationOrder) {
  ExpectAllAgree("int f() { int x = 1; return x + (x = 3) + x * (x = 4); }",
                 "f", {});
}

TEST(Differential, BigConstantsExceedRiscImmediates) {
  ExpectAllAgree(
      "int f(int a) { return a * 1000003 + 123456789012345 - (a & 65535000); }",
      "f", {ArgValue::Scalar(-999)});
}

TEST(Differential, UnoptimizedMatchesToo) {
  CompileOptions options;
  options.optimize = false;
  ExpectAllAgree(R"(
    int helper(int a) { return a * 2 + 1; }
    int f(int n) {
      int s = 0;
      int i;
      for (i = 0; i < n; i++) { s += helper(i); }
      return s;
    }
  )",
                 "f", {ArgValue::Scalar(9)}, options);
}

TEST(Differential, ManyLiveVariablesForceSpills) {
  // 12 simultaneously live scalars exceed x86's 6 allocatable registers.
  ExpectAllAgree(R"(
    int f(int n) {
      int a = n + 1; int b = n + 2; int c = n + 3; int d = n + 4;
      int e = n + 5; int g = n + 6; int h = n + 7; int i = n + 8;
      int j = n + 9; int k = n + 10; int l = n + 11; int m = n + 12;
      int s = 0;
      int t;
      for (t = 0; t < 3; t++) {
        s += a * b + c * d + e * g + h * i + j * k + l * m;
        a++; b += 2; c ^= d; d -= e; e |= g; g &= h;
        h = h << 1; i = i >> 1; j *= 2; k /= 2; l += m; m -= a;
      }
      return s + a + b + c + d + e + g + h + i + j + k + l + m;
    }
  )",
                 "f", {ArgValue::Scalar(37)});
}

TEST(Differential, EncodeDecodeRoundTripPreservesBehaviour) {
  minic::Program program = MustParse(
      "int f(int a) { int i; int s = 0; for (i = 0; i < a; i++) { s += i * i; } return s; }");
  const CompileResult compiled =
      CompileProgram(program, Isa::kArm, "roundtrip");
  ASSERT_TRUE(compiled.ok) << compiled.error;
  const auto blob = compiled.module.Encode();
  const auto decoded = binary::BinModule::Decode(blob);
  ASSERT_TRUE(decoded.has_value());
  binary::Vm vm1(compiled.module);
  binary::Vm vm2(*decoded);
  const auto r1 = vm1.Call("f", {ArgValue::Scalar(10)});
  const auto r2 = vm2.Call("f", {ArgValue::Scalar(10)});
  ASSERT_TRUE(r1.ok && r2.ok);
  EXPECT_EQ(r1.value, r2.value);
  EXPECT_EQ(r1.value, 285);
}

}  // namespace
}  // namespace asteria::compiler
