// Decompiler tests: CFG construction, dominators, lifting, structuring,
// Table-I AST invariants, cross-ISA stability, and callee counting.
#include <gtest/gtest.h>

#include "ast/lcrs.h"
#include "binary/disasm.h"
#include "compiler/compile.h"
#include "decompiler/decompile.h"
#include "decompiler/machine_cfg.h"
#include "decompiler/structurer.h"
#include "minic/parser.h"
#include "minic/sema.h"

namespace asteria::decompiler {
namespace {

using binary::Isa;

minic::Program MustParse(const std::string& source) {
  minic::Program program;
  std::string error;
  EXPECT_TRUE(minic::Parse(source, &program, &error)) << error;
  EXPECT_TRUE(minic::Check(program, &error)) << error;
  return program;
}

binary::BinModule Compile(const std::string& source, Isa isa) {
  minic::Program program = MustParse(source);
  auto result = compiler::CompileProgram(program, isa, "m");
  EXPECT_TRUE(result.ok) << result.error;
  return std::move(result.module);
}

// Counts nodes of a given kind in an AST.
int CountKind(const ast::Ast& tree, ast::NodeKind kind) {
  int count = 0;
  for (ast::NodeId id : tree.PreOrder()) {
    if (tree.node(id).kind == kind) ++count;
  }
  return count;
}

TEST(MachineCfg, BuildsBlocksAndEdges) {
  binary::BinModule module = Compile(
      "int f(int n) { if (n > 0) { return 1; } return 2; }", Isa::kX64);
  MachineCfg cfg(module.functions[0]);
  EXPECT_GE(cfg.num_blocks(), 3);
  // Entry has a conditional: two successors.
  bool found_cond = false;
  for (int b = 0; b < cfg.num_blocks(); ++b) {
    if (cfg.block(b).succs.size() == 2) found_cond = true;
  }
  EXPECT_TRUE(found_cond);
}

TEST(MachineCfg, ArmIfConversionCollapsesCfg) {
  // Paper Fig. 2: ARM's conditional execution merges basic blocks.
  const std::string source =
      "int f(int a, int b) { int m = 0; if (a < b) { m = a; } else { m = b; } return m; }";
  binary::BinModule x86 = Compile(source, Isa::kX86);
  binary::BinModule arm = Compile(source, Isa::kArm);
  MachineCfg x86_cfg(x86.functions[0]);
  MachineCfg arm_cfg(arm.functions[0]);
  EXPECT_GT(x86_cfg.num_blocks(), arm_cfg.num_blocks());
  EXPECT_EQ(arm_cfg.num_blocks(), 1);
}

TEST(Dominators, LinearChain) {
  binary::BinModule module = Compile(
      "int f(int n) { int s = n + 1; s *= 2; return s; }", Isa::kPpc);
  MachineCfg cfg(module.functions[0]);
  const std::vector<int> idom = ComputeIdom(cfg);
  EXPECT_EQ(idom[0], 0);
}

TEST(Dominators, DiamondJoin) {
  binary::BinModule module = Compile(
      "int f(int n) { int r = 0; if (n > 0) { r = 1; } else { r = 2; } return r * n; }",
      Isa::kX86);
  MachineCfg cfg(module.functions[0]);
  const std::vector<int> ipdom = ComputeIpostdom(cfg);
  // The entry's immediate postdominator is the join block, which then
  // returns: entry's ipdom must not be -1 in a diamond.
  ASSERT_GE(cfg.num_blocks(), 4);
  EXPECT_GE(ipdom[0], 0);
}

TEST(Decompile, ProducesValidAstOnAllIsas) {
  const std::string source = R"(
    int helper(int a[], int n) {
      int s = 0;
      int i;
      for (i = 0; i < n; i++) { s += a[i]; }
      return s;
    }
    int f(int n) {
      int buf[8];
      int i = 0;
      while (i < 8) { buf[i] = i * 3 + 1; i++; }
      if (n > 4) { return helper(buf, 8); }
      return helper(buf, n) - 7;
    }
  )";
  for (int i = 0; i < binary::kNumIsas; ++i) {
    const Isa isa = static_cast<Isa>(i);
    binary::BinModule module = Compile(source, isa);
    for (std::size_t f = 0; f < module.functions.size(); ++f) {
      DecompiledFunction decompiled =
          DecompileFunction(module, static_cast<int>(f));
      std::string error;
      EXPECT_TRUE(decompiled.tree.Validate(&error))
          << binary::IsaName(isa) << "/" << decompiled.name << ": " << error;
      EXPECT_GE(decompiled.tree.size(), 5)
          << binary::IsaName(isa) << "/" << decompiled.name;
    }
  }
}

TEST(Decompile, RecoversControlFlowKinds) {
  binary::BinModule module = Compile(R"(
    int f(int n) {
      int s = 0;
      int i;
      for (i = 0; i < n; i++) {
        if (i % 3 == 0) { s += i; } else { s -= 1; }
      }
      return s;
    }
  )",
                                     Isa::kPpc);
  DecompiledFunction decompiled = DecompileFunction(module, 0);
  EXPECT_GE(CountKind(decompiled.tree, ast::NodeKind::kWhile), 1);
  EXPECT_GE(CountKind(decompiled.tree, ast::NodeKind::kIf), 1);
  EXPECT_GE(CountKind(decompiled.tree, ast::NodeKind::kReturn), 1);
}

TEST(Decompile, RecoversSwitchFromJumpTable) {
  binary::BinModule module = Compile(R"(
    int f(int n) {
      int r = 0;
      switch (n) {
        case 0: r = 10; break;
        case 1: r = 11; break;
        case 2: r = 12; break;
        case 3: r = 13; break;
        case 4: r = 14; break;
        default: r = -1;
      }
      return r + 1;
    }
  )",
                                     Isa::kX64);
  DecompiledFunction decompiled = DecompileFunction(module, 0);
  EXPECT_EQ(CountKind(decompiled.tree, ast::NodeKind::kSwitch), 1);
}

TEST(Decompile, ArmTernaryFromCsel) {
  binary::BinModule module = Compile(
      "int f(int a, int b) { int m = 0; if (a < b) { m = a; } else { m = b; } return m; }",
      Isa::kArm);
  DecompiledFunction decompiled = DecompileFunction(module, 0);
  EXPECT_GE(CountKind(decompiled.tree, ast::NodeKind::kTernary), 1);
  EXPECT_EQ(CountKind(decompiled.tree, ast::NodeKind::kIf), 0);
}

TEST(Decompile, CrossIsaAstsAreSimilarButNotIdentical) {
  const std::string source = R"(
    int f(int n) {
      int s = 0;
      int i;
      for (i = 0; i < n; i++) {
        if (i % 2 == 0) { s += i * 5; }
      }
      return s;
    }
  )";
  std::vector<ast::Ast> trees;
  for (int i = 0; i < binary::kNumIsas; ++i) {
    binary::BinModule module = Compile(source, static_cast<Isa>(i));
    trees.push_back(DecompileFunction(module, 0).tree);
  }
  // All four share control-flow skeleton: a loop and a return.
  for (const ast::Ast& tree : trees) {
    EXPECT_GE(CountKind(tree, ast::NodeKind::kWhile), 1);
    EXPECT_GE(CountKind(tree, ast::NodeKind::kReturn), 1);
  }
  // Sizes are in the same ballpark (within 3x of each other).
  int min_size = trees[0].size(), max_size = trees[0].size();
  for (const ast::Ast& tree : trees) {
    min_size = std::min(min_size, tree.size());
    max_size = std::max(max_size, tree.size());
  }
  EXPECT_LE(max_size, min_size * 3);
}

TEST(Decompile, GotoFallbackKeepsAstValid) {
  binary::BinModule module = Compile(R"(
    int f(int n) {
      int r = 0;
      if (n < 0) { goto fail; }
      if (n > 100) { goto fail; }
      r = n * 2;
      goto done;
      fail: r = -1;
      done: return r;
    }
  )",
                                     Isa::kX86);
  DecompiledFunction decompiled = DecompileFunction(module, 0);
  std::string error;
  EXPECT_TRUE(decompiled.tree.Validate(&error)) << error;
}

TEST(Decompile, CalleeCountsRespectBetaFilter) {
  const std::string source = R"(
    int tiny(int a) { return a; }
    int big(int a) {
      int s = 0;
      int i;
      for (i = 0; i < a; i++) { s += i * a + (s >> 2); }
      return s;
    }
    int f(int n) { return tiny(n) + big(n) + big(n + 1); }
  )";
  // Compile without inlining so all call edges survive.
  minic::Program program = MustParse(source);
  compiler::CompileOptions options;
  options.inline_small = false;
  auto result = compiler::CompileProgram(program, Isa::kPpc, "m", options);
  ASSERT_TRUE(result.ok) << result.error;
  DecompiledFunction f = DecompileFunction(result.module, 2, /*beta=*/4);
  EXPECT_EQ(f.callee_count_raw, 2);  // distinct callees: tiny, big
  EXPECT_EQ(f.callee_count, 1);      // tiny (< 4 instructions) filtered out
}

TEST(Decompile, InliningChangesCalleeCountsAcrossIsas) {
  // The same source yields different callee sets per ISA because inline
  // thresholds differ — the effect the β-filter compensates for.
  const std::string source = R"(
    int leaf(int a) { return a * 2 + 1; }
    int f(int n) { return leaf(n) + leaf(n + 1) + n; }
  )";
  minic::Program program = MustParse(source);
  auto x86 = compiler::CompileProgram(program, Isa::kX86, "m");
  ASSERT_TRUE(x86.ok);
  // leaf is small: every ISA inlines it; callee count becomes 0.
  DecompiledFunction f = DecompileFunction(x86.module, 1);
  EXPECT_EQ(f.callee_count_raw, 0);
}

TEST(Decompile, DigitalizedLabelsWithinVocabulary) {
  binary::BinModule module = Compile(R"(
    int f(int a, int b) {
      int buf[4];
      buf[a & 3] = b % 5;
      return buf[0] << 2;
    }
  )",
                                     Isa::kX64);
  DecompiledFunction decompiled = DecompileFunction(module, 0);
  for (int label : decompiled.tree.Digitalize()) {
    EXPECT_GE(label, 1);
    EXPECT_LE(label, ast::kMaxNodeLabel);
  }
  // LCRS binarization of a decompiled tree stays consistent.
  const ast::BinaryAst binary_tree =
      ast::ToLeftChildRightSibling(decompiled.tree);
  EXPECT_EQ(binary_tree.size(), decompiled.tree.size());
}

}  // namespace
}  // namespace asteria::decompiler
