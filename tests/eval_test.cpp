// Evaluation metric tests: ROC/AUC invariants and hand-computed cases.
#include <gtest/gtest.h>

#include "eval/roc.h"
#include "util/rng.h"

namespace asteria::eval {
namespace {

TEST(Roc, PerfectSeparationGivesAucOne) {
  std::vector<Scored> scored = {{0.9, true}, {0.8, true}, {0.2, false},
                                {0.1, false}};
  EXPECT_DOUBLE_EQ(ComputeRoc(scored).auc, 1.0);
  EXPECT_DOUBLE_EQ(Auc(scored), 1.0);
}

TEST(Roc, ReversedSeparationGivesAucZero) {
  std::vector<Scored> scored = {{0.1, true}, {0.2, true}, {0.8, false},
                                {0.9, false}};
  EXPECT_DOUBLE_EQ(ComputeRoc(scored).auc, 0.0);
  EXPECT_DOUBLE_EQ(Auc(scored), 0.0);
}

TEST(Roc, RandomScoresGiveHalf) {
  util::Rng rng(4);
  std::vector<Scored> scored;
  for (int i = 0; i < 20'000; ++i) {
    scored.push_back({rng.NextDouble(), rng.NextBool()});
  }
  EXPECT_NEAR(ComputeRoc(scored).auc, 0.5, 0.02);
  EXPECT_NEAR(Auc(scored), 0.5, 0.02);
}

TEST(Roc, HandComputedCase) {
  // scores: P:0.8 N:0.6 P:0.4 N:0.2 -> AUC = 3/4 (one swapped pair).
  std::vector<Scored> scored = {{0.8, true}, {0.6, false}, {0.4, true},
                                {0.2, false}};
  EXPECT_DOUBLE_EQ(Auc(scored), 0.75);
  EXPECT_DOUBLE_EQ(ComputeRoc(scored).auc, 0.75);
}

TEST(Roc, TiedScoresUseMidranks) {
  std::vector<Scored> scored = {{0.5, true}, {0.5, false}};
  EXPECT_DOUBLE_EQ(Auc(scored), 0.5);
  EXPECT_DOUBLE_EQ(ComputeRoc(scored).auc, 0.5);
}

TEST(Roc, TrapezoidMatchesRankForm) {
  util::Rng rng(8);
  std::vector<Scored> scored;
  for (int i = 0; i < 500; ++i) {
    const bool label = rng.NextBool();
    scored.push_back({rng.NextDouble() + (label ? 0.3 : 0.0), label});
  }
  EXPECT_NEAR(ComputeRoc(scored).auc, Auc(scored), 1e-9);
}

TEST(Roc, AucAlwaysInUnitInterval) {
  util::Rng rng(15);
  for (int round = 0; round < 20; ++round) {
    std::vector<Scored> scored;
    const int n = static_cast<int>(rng.NextInt(2, 50));
    bool saw_pos = false, saw_neg = false;
    for (int i = 0; i < n; ++i) {
      const bool label = rng.NextBool();
      saw_pos |= label;
      saw_neg |= !label;
      scored.push_back({rng.NextDouble(), label});
    }
    if (!saw_pos || !saw_neg) continue;
    const double auc = Auc(scored);
    EXPECT_GE(auc, 0.0);
    EXPECT_LE(auc, 1.0);
  }
}

TEST(Roc, TprAtFprInterpolates) {
  std::vector<Scored> scored = {{0.9, true},  {0.7, true},  {0.6, false},
                                {0.5, true},  {0.3, false}, {0.1, false}};
  RocResult roc = ComputeRoc(scored);
  EXPECT_NEAR(TprAtFpr(roc, 0.0), 2.0 / 3.0, 1e-9);
  EXPECT_NEAR(TprAtFpr(roc, 1.0), 1.0, 1e-9);
}

TEST(Roc, YoudenPicksBestThreshold) {
  std::vector<Scored> scored = {{0.9, true}, {0.8, true}, {0.75, true},
                                {0.7, false}, {0.2, false}, {0.1, false}};
  RocResult roc = ComputeRoc(scored);
  const double threshold = YoudenThreshold(roc);
  // Any threshold in (0.7, 0.75] perfectly separates; Youden must find one.
  Confusion c = ConfusionAt(scored, threshold);
  EXPECT_EQ(c.tp, 3);
  EXPECT_EQ(c.fp, 0);
}

TEST(Confusion, CountsAndRates) {
  std::vector<Scored> scored = {{0.9, true}, {0.6, false}, {0.4, true},
                                {0.1, false}};
  Confusion c = ConfusionAt(scored, 0.5);
  EXPECT_EQ(c.tp, 1);
  EXPECT_EQ(c.fp, 1);
  EXPECT_EQ(c.tn, 1);
  EXPECT_EQ(c.fn, 1);
  EXPECT_DOUBLE_EQ(c.Tpr(), 0.5);
  EXPECT_DOUBLE_EQ(c.Fpr(), 0.5);
  EXPECT_DOUBLE_EQ(c.Accuracy(), 0.5);
}

TEST(Roc, DegenerateInputsAreSafe) {
  EXPECT_DOUBLE_EQ(ComputeRoc({}).auc, 0.0);
  EXPECT_DOUBLE_EQ(ComputeRoc({{0.5, true}}).auc, 0.0);
  EXPECT_DOUBLE_EQ(Auc({{0.5, true}}), 0.0);
}

}  // namespace
}  // namespace asteria::eval
