// Streaming-ingest test net (docs/ARCHITECTURE.md "Incremental ingest").
//
// Four contracts are pinned here:
//  1. Shard equivalence: an index assembled from per-image shards via
//     OpenSharded answers TopK/TopKBatch bitwise identical to a monolithic
//     index built from the same functions, at thread counts 1/2/8 — and the
//     stored encodings themselves are bitwise equal.
//  2. Crash-publish: a failpoint-injected crash at every ingest.* point
//     (and at the store layer's own crash point) leaves the previously
//     published manifest loading bitwise-intact, a dedup republishes
//     nothing, and a retry after an ingest.publish crash reuses the
//     already-written FENC cache instead of re-encoding.
//  3. Compaction: SearchIndex::AppendTo folds shard B into shard A with
//     queries bitwise identical to a fresh A∪B build (threads 1/2/8, the
//     check_sanitize.sh sweep runs this under ASan and TSan), and
//     IngestService::Compact preserves every TopK result while deleting
//     the replaced shard files.
//  4. Staleness: a retrained model refuses a foreign manifest, quarantines
//     a stale FENC cache and rebuilds it; delta vuln search scans only the
//     shards above the searched_seq high-water mark; a publish pokes a
//     live asteria-serve daemon so new entries are queryable immediately.
#include <gtest/gtest.h>

#include <dirent.h>
#include <sys/stat.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/asteria.h"
#include "core/search_index.h"
#include "firmware/image.h"
#include "firmware/search.h"
#include "ingest/ingest.h"
#include "serve/client.h"
#include "serve/server.h"
#include "store/manifest.h"
#include "util/failpoint.h"

namespace asteria {
namespace {

using ::testing::TempDir;

std::string TempPath(const std::string& name) { return TempDir() + name; }

core::AsteriaConfig SmallModelConfig(std::uint64_t seed = 1) {
  core::AsteriaConfig config;
  config.siamese.encoder.embedding_dim = 8;
  config.siamese.encoder.hidden_dim = 8;
  config.seed = seed;
  return config;
}

void Arm(const std::string& spec) {
  std::string error;
  ASSERT_TRUE(util::ConfigureFailpoints(spec, &error)) << error;
}

bool FileExists(const std::string& path) {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0;
}

// Deletes `dir` and everything under it (one level of subdirectories is
// all an ingest dir ever has). TempDir() contents survive across runs, and
// a stale manifest from a previous execution would turn every re-ingest
// into a dedup — each test gets a directory that provably does not exist.
void RemoveTree(const std::string& dir) {
  DIR* handle = ::opendir(dir.c_str());
  if (handle == nullptr) return;
  while (dirent* entry = ::readdir(handle)) {
    const std::string name = entry->d_name;
    if (name == "." || name == "..") continue;
    const std::string path = dir + "/" + name;
    struct stat st{};
    if (::stat(path.c_str(), &st) == 0 && S_ISDIR(st.st_mode)) {
      RemoveTree(path);
    } else {
      std::remove(path.c_str());
    }
  }
  ::closedir(handle);
  ::rmdir(dir.c_str());
}

// A guaranteed-absent index directory under TempDir().
std::string FreshDir(const std::string& name) {
  const std::string dir = TempPath(name);
  RemoveTree(dir);
  EXPECT_FALSE(FileExists(dir));
  return dir;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot read " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void WriteBlob(const std::string& path, const std::vector<std::uint8_t>& blob) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out.good()) << "cannot write " << path;
  out.write(reinterpret_cast<const char*>(blob.data()),
            static_cast<std::streamsize>(blob.size()));
  ASSERT_TRUE(out.good()) << "short write to " << path;
}

void ExpectSameHits(const std::vector<core::SearchHit>& got,
                    const std::vector<core::SearchHit>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].index, want[i].index) << "rank " << i;
    EXPECT_EQ(got[i].name, want[i].name) << "rank " << i;
    EXPECT_EQ(got[i].score, want[i].score) << "rank " << i;  // bitwise
  }
}

void ExpectSameEncoding(const nn::Matrix& got, const nn::Matrix& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got.data()[i], want.data()[i]) << "element " << i;  // bitwise
  }
}

// Packs `count` corpus images to <prefix>-<i>.fw files and returns the
// paths in image order (the order every test ingests in).
std::vector<std::string> PackImages(const firmware::FirmwareCorpus& corpus,
                                    const std::string& prefix, int count) {
  std::vector<std::string> paths;
  for (int i = 0; i < count; ++i) {
    const std::string path = prefix + "-" + std::to_string(i) + ".fw";
    WriteBlob(path, firmware::Pack(
                        corpus.images[static_cast<std::size_t>(i)]));
    paths.push_back(path);
  }
  return paths;
}

// What IngestFile indexes for one packed image: the post-unpack decompile
// with the corpus filters. Built here independently so the monolithic
// reference never touches the ingest code under test.
std::vector<core::FunctionFeature> ReferenceFeatures(
    const std::vector<std::string>& paths, int beta, int min_ast_size) {
  std::vector<core::FunctionFeature> features;
  for (const std::string& path : paths) {
    const std::string bytes = ReadFileBytes(path);
    std::vector<std::uint8_t> blob(bytes.begin(), bytes.end());
    auto image = firmware::Unpack(blob);
    EXPECT_TRUE(image.has_value()) << path << " does not unpack";
    if (!image.has_value()) continue;
    auto extracted = ingest::IngestService::DecompileImage(
        *image, beta, min_ast_size, nullptr);
    features.insert(features.end(), extracted.begin(), extracted.end());
  }
  return features;
}

class IngestTest : public ::testing::Test {
 protected:
  void SetUp() override { util::ClearFailpoints(); }
  void TearDown() override { util::ClearFailpoints(); }

  // A small corpus is enough: every image still carries several non-trivial
  // functions after the min_ast_size filter.
  firmware::FirmwareCorpus MakeCorpus(int images, std::uint64_t seed) {
    firmware::FirmwareCorpusConfig config;
    config.images = images;
    config.seed = seed;
    return firmware::BuildFirmwareCorpus(config);
  }

  ingest::IngestConfig MakeConfig(const std::string& index_dir) {
    ingest::IngestConfig config;
    config.index_dir = index_dir;
    return config;
  }

  std::string ManifestPath(const std::string& index_dir) {
    return index_dir + "/" + store::kManifestFileName;
  }
};

// -- 1. Shard equivalence ---------------------------------------------------

TEST_F(IngestTest, ShardedBitwiseIdenticalToMonolithic) {
  core::AsteriaModel model(SmallModelConfig());
  const auto corpus = MakeCorpus(4, 11);
  const auto paths = PackImages(corpus, TempPath("shardeq"), 4);

  const std::string dir = FreshDir("shardeq_idx");
  ingest::IngestService service(model, MakeConfig(dir));
  std::string error;
  ASSERT_TRUE(service.Open(&error)) << error;
  ingest::IngestStats stats;
  for (const std::string& path : paths) {
    ASSERT_TRUE(service.IngestFile(path, &stats, &error)) << error;
  }
  EXPECT_EQ(stats.images_published, 4);
  EXPECT_EQ(service.manifest().shards.size(), 4u);

  const auto features = ReferenceFeatures(paths, 4, 5);
  ASSERT_FALSE(features.empty());
  core::SearchIndex mono(model);
  mono.AddAll(features);
  ASSERT_EQ(mono.size(), static_cast<int>(features.size()));
  EXPECT_EQ(stats.functions_indexed, mono.size());

  std::vector<const core::FunctionFeature*> queries;
  std::vector<int> ks;
  for (std::size_t i = 0; i < features.size() && i < 6; ++i) {
    queries.push_back(&features[i]);
    ks.push_back(5);
  }
  const auto want_batch = mono.TopKBatch(queries, ks);

  for (int threads : {1, 2, 8}) {
    core::SearchIndex sharded(model, threads);
    ASSERT_TRUE(sharded.OpenSharded(ManifestPath(dir), &error))
        << "threads=" << threads << ": " << error;
    ASSERT_EQ(sharded.size(), mono.size()) << "threads=" << threads;
    for (int i = 0; i < sharded.size(); ++i) {
      EXPECT_EQ(sharded.name(i), mono.name(i)) << "entry " << i;
      EXPECT_EQ(sharded.callee_count(i), mono.callee_count(i)) << i;
      ExpectSameEncoding(sharded.encoding(i), mono.encoding(i));
    }
    for (const auto* query : queries) {
      ExpectSameHits(sharded.TopK(*query, 5), mono.TopK(*query, 5));
    }
    const auto got_batch = sharded.TopKBatch(queries, ks);
    ASSERT_EQ(got_batch.size(), want_batch.size());
    for (std::size_t q = 0; q < got_batch.size(); ++q) {
      ExpectSameHits(got_batch[q], want_batch[q]);
    }
  }

  // The kind-sniffing Open dispatches a manifest path to OpenSharded.
  core::SearchIndex opened(model);
  ASSERT_TRUE(opened.Open(ManifestPath(dir), &error)) << error;
  EXPECT_EQ(opened.size(), mono.size());
}

// -- 2. Crash-publish contract ----------------------------------------------

TEST_F(IngestTest, IngestDedupsByContentDigest) {
  core::AsteriaModel model(SmallModelConfig());
  const auto corpus = MakeCorpus(2, 12);
  const auto paths = PackImages(corpus, TempPath("dedup"), 2);

  const std::string dir = FreshDir("dedup_idx");
  ingest::IngestService service(model, MakeConfig(dir));
  std::string error;
  ASSERT_TRUE(service.Open(&error)) << error;
  ingest::IngestStats stats;
  ASSERT_TRUE(service.IngestFile(paths[0], &stats, &error)) << error;
  ASSERT_TRUE(service.IngestFile(paths[1], &stats, &error)) << error;
  EXPECT_EQ(stats.images_published, 2);
  const std::string manifest_bytes = ReadFileBytes(ManifestPath(dir));

  // Same bytes under a different name still dedup: the digest is over
  // content, not the path.
  const std::string copy = TempPath("dedup-copy.fw");
  {
    const std::string bytes = ReadFileBytes(paths[0]);
    std::vector<std::uint8_t> blob(bytes.begin(), bytes.end());
    WriteBlob(copy, blob);
  }
  ingest::IngestStats again;
  ASSERT_TRUE(service.IngestFile(paths[0], &again, &error)) << error;
  ASSERT_TRUE(service.IngestFile(copy, &again, &error)) << error;
  EXPECT_EQ(again.images_published, 0);
  EXPECT_EQ(again.images_deduped, 2);
  EXPECT_EQ(again.functions_encoded, 0);

  // A dedup publishes nothing: the manifest is bitwise untouched.
  EXPECT_EQ(ReadFileBytes(ManifestPath(dir)), manifest_bytes);
  EXPECT_EQ(service.manifest().sequence, 2u);
}

TEST_F(IngestTest, CrashAtEveryFailpointLeavesManifestIntact) {
  core::AsteriaModel model(SmallModelConfig());
  const auto corpus = MakeCorpus(3, 13);
  const auto paths = PackImages(corpus, TempPath("crash"), 3);

  const std::string dir = FreshDir("crash_idx");
  ingest::IngestService service(model, MakeConfig(dir));
  std::string error;
  ASSERT_TRUE(service.Open(&error)) << error;
  ingest::IngestStats stats;
  ASSERT_TRUE(service.IngestFile(paths[0], &stats, &error)) << error;
  ASSERT_TRUE(service.IngestFile(paths[1], &stats, &error)) << error;

  const std::string manifest_bytes = ReadFileBytes(ManifestPath(dir));
  const auto features = ReferenceFeatures({paths[0], paths[1]}, 4, 5);
  ASSERT_FALSE(features.empty());
  core::SearchIndex baseline(model);
  ASSERT_TRUE(baseline.OpenSharded(ManifestPath(dir), &error)) << error;
  const auto want = baseline.TopK(features[0], 5);

  // Each spec models dying at one point of the third image's ingest —
  // before the manifest rename, the single commit point. store.crash is
  // the container layer's own "temp file written, rename never happened".
  const std::vector<std::string> specs = {
      "ingest.read=once",        "ingest.decompile=once",
      "ingest.shard_write=once", "store.crash=once",
      "ingest.publish=once",
  };
  for (const std::string& spec : specs) {
    util::ClearFailpoints();
    Arm(spec);
    ingest::IngestStats crashed;
    std::string crash_error;
    EXPECT_FALSE(service.IngestFile(paths[2], &crashed, &crash_error))
        << spec << " did not fail the ingest";
    EXPECT_EQ(crashed.images_failed, 1) << spec;
    const std::string name = spec.substr(0, spec.find('='));
    EXPECT_GE(util::FailpointFireCount(name), 1u) << spec << " never fired";

    // The previously published manifest is bitwise intact and still loads
    // with identical query results.
    EXPECT_EQ(ReadFileBytes(ManifestPath(dir)), manifest_bytes) << spec;
    core::SearchIndex reopened(model);
    ASSERT_TRUE(reopened.OpenSharded(ManifestPath(dir), &error))
        << spec << ": " << error;
    EXPECT_EQ(reopened.size(), baseline.size()) << spec;
    ExpectSameHits(reopened.TopK(features[0], 5), want);
  }

  // With the faults cleared the same image ingests cleanly: orphaned
  // shard/cache files from the crashed attempts are simply overwritten.
  util::ClearFailpoints();
  ingest::IngestStats retry;
  ASSERT_TRUE(service.IngestFile(paths[2], &retry, &error)) << error;
  EXPECT_EQ(retry.images_published, 1);
  EXPECT_EQ(service.manifest().sequence, 3u);
  EXPECT_EQ(service.manifest().shards.size(), 3u);
}

TEST_F(IngestTest, CrashRetryReusesEncodeCache) {
  core::AsteriaModel model(SmallModelConfig());
  const auto corpus = MakeCorpus(1, 14);
  const auto paths = PackImages(corpus, TempPath("cachereuse"), 1);

  const std::string dir = FreshDir("cachereuse_idx");
  ingest::IngestService service(model, MakeConfig(dir));
  std::string error;
  ASSERT_TRUE(service.Open(&error)) << error;

  // Die after the shard and FENC cache are written but before the rename.
  Arm("ingest.publish=once");
  ingest::IngestStats crashed;
  EXPECT_FALSE(service.IngestFile(paths[0], &crashed, &error));
  EXPECT_GT(crashed.functions_encoded, 0);
  EXPECT_FALSE(FileExists(ManifestPath(dir)));

  // The retry finds the cache: zero re-encodes, one cache hit.
  util::ClearFailpoints();
  ingest::IngestStats retry;
  ASSERT_TRUE(service.IngestFile(paths[0], &retry, &error)) << error;
  EXPECT_EQ(retry.images_published, 1);
  EXPECT_EQ(retry.cache_hits, 1);
  EXPECT_EQ(retry.functions_encoded, 0);
  EXPECT_EQ(retry.functions_indexed, crashed.functions_encoded);
}

TEST_F(IngestTest, EncodeFailureIsolatesOneFunction) {
  core::AsteriaModel model(SmallModelConfig());
  const auto corpus = MakeCorpus(1, 15);
  const auto paths = PackImages(corpus, TempPath("encfail"), 1);
  const auto features = ReferenceFeatures(paths, 4, 5);
  ASSERT_GT(features.size(), 1u);

  const std::string dir = FreshDir("encfail_idx");
  ingest::IngestService service(model, MakeConfig(dir));
  std::string error;
  ASSERT_TRUE(service.Open(&error)) << error;

  // One function's encode dies; the image still publishes without it.
  Arm("ingest.encode=hit:2");
  ingest::IngestStats stats;
  ASSERT_TRUE(service.IngestFile(paths[0], &stats, &error)) << error;
  EXPECT_EQ(stats.images_published, 1);
  EXPECT_EQ(stats.functions_encoded, static_cast<int>(features.size()) - 1);
  EXPECT_EQ(stats.functions_indexed, static_cast<int>(features.size()) - 1);
  EXPECT_EQ(stats.report.failed, 1);
  EXPECT_EQ(service.manifest().TotalEntries(), features.size() - 1);
}

// -- 3. Compaction ----------------------------------------------------------

TEST_F(IngestTest, AppendToCompactionBitwiseIdenticalToFreshBuild) {
  core::AsteriaModel model(SmallModelConfig());
  const auto corpus = MakeCorpus(2, 16);
  const auto paths = PackImages(corpus, TempPath("appendto"), 2);
  const auto features_a = ReferenceFeatures({paths[0]}, 4, 5);
  const auto features_b = ReferenceFeatures({paths[1]}, 4, 5);
  ASSERT_FALSE(features_a.empty());
  ASSERT_FALSE(features_b.empty());

  // Shard A saved, then B's entries appended in place — the compaction
  // write path.
  const std::string path = TempPath("appendto.idx");
  core::SearchIndex grower(model);
  grower.AddAll(features_a);
  const int first_index = grower.size();
  std::string error;
  ASSERT_TRUE(grower.Save(path, &error)) << error;
  grower.AddAll(features_b);
  ASSERT_TRUE(grower.AppendTo(path, first_index, &error)) << error;

  // Reference: one fresh A∪B build that never touched AppendTo.
  std::vector<core::FunctionFeature> both = features_a;
  both.insert(both.end(), features_b.begin(), features_b.end());
  core::SearchIndex fresh(model);
  fresh.AddAll(both);

  for (int threads : {1, 2, 8}) {
    core::SearchIndex loaded(model, threads);
    ASSERT_TRUE(loaded.Load(path, &error))
        << "threads=" << threads << ": " << error;
    ASSERT_EQ(loaded.size(), fresh.size()) << "threads=" << threads;
    for (int i = 0; i < loaded.size(); ++i) {
      EXPECT_EQ(loaded.name(i), fresh.name(i)) << "entry " << i;
      ExpectSameEncoding(loaded.encoding(i), fresh.encoding(i));
    }
    for (std::size_t q = 0; q < both.size() && q < 4; ++q) {
      ExpectSameHits(loaded.TopK(both[q], 5), fresh.TopK(both[q], 5));
    }
  }
}

TEST_F(IngestTest, CompactionPreservesQueryResultsBitwise) {
  core::AsteriaModel model(SmallModelConfig());
  const auto corpus = MakeCorpus(4, 17);
  const auto paths = PackImages(corpus, TempPath("compact"), 4);

  const std::string dir = FreshDir("compact_idx");
  ingest::IngestService service(model, MakeConfig(dir));
  std::string error;
  ASSERT_TRUE(service.Open(&error)) << error;
  ingest::IngestStats stats;
  for (const std::string& path : paths) {
    ASSERT_TRUE(service.IngestFile(path, &stats, &error)) << error;
  }
  ASSERT_EQ(service.manifest().shards.size(), 4u);
  const std::uint64_t entries_before = service.manifest().TotalEntries();
  std::vector<std::string> old_files;
  for (const auto& shard : service.manifest().shards) {
    old_files.push_back(dir + "/" + shard.file);
  }

  const auto features = ReferenceFeatures(paths, 4, 5);
  core::SearchIndex before(model);
  ASSERT_TRUE(before.OpenSharded(ManifestPath(dir), &error)) << error;
  std::vector<std::vector<core::SearchHit>> want;
  for (std::size_t q = 0; q < features.size() && q < 6; ++q) {
    want.push_back(before.TopK(features[q], 5));
  }

  // A crash mid-compaction (before the manifest rename) changes nothing.
  const std::string manifest_bytes = ReadFileBytes(ManifestPath(dir));
  Arm("ingest.compact=once");
  int merged = 0;
  EXPECT_FALSE(service.Compact(&merged, &error));
  EXPECT_EQ(ReadFileBytes(ManifestPath(dir)), manifest_bytes);
  for (const std::string& file : old_files) {
    EXPECT_TRUE(FileExists(file)) << file;
  }

  // The real compaction folds all four small shards into one run.
  util::ClearFailpoints();
  ASSERT_TRUE(service.Compact(&merged, &error)) << error;
  EXPECT_EQ(merged, 1);
  ASSERT_EQ(service.manifest().shards.size(), 1u);
  EXPECT_EQ(service.manifest().TotalEntries(), entries_before);

  core::SearchIndex after(model);
  ASSERT_TRUE(after.OpenSharded(ManifestPath(dir), &error)) << error;
  ASSERT_EQ(after.size(), before.size());
  for (std::size_t q = 0; q < want.size(); ++q) {
    ExpectSameHits(after.TopK(features[q], 5), want[q]);
  }

  // The replaced shard files are gone; the merged one exists.
  for (const std::string& file : old_files) {
    EXPECT_FALSE(FileExists(file)) << file << " should have been deleted";
  }
  EXPECT_TRUE(FileExists(dir + "/" + service.manifest().shards[0].file));
}

// -- 4. Staleness: retrained model, delta search, serve poke ----------------

TEST_F(IngestTest, RetrainedModelRefusesManifestAndRebuildsStaleCache) {
  core::AsteriaModel old_model(SmallModelConfig(1));
  core::AsteriaModel new_model(SmallModelConfig(2));
  ASSERT_NE(old_model.WeightsFingerprint(), new_model.WeightsFingerprint());

  const auto corpus = MakeCorpus(1, 18);
  const auto paths = PackImages(corpus, TempPath("stale"), 1);

  const std::string old_dir = FreshDir("stale_old_idx");
  ingest::IngestService old_service(old_model, MakeConfig(old_dir));
  std::string error;
  ASSERT_TRUE(old_service.Open(&error)) << error;
  ingest::IngestStats stats;
  ASSERT_TRUE(old_service.IngestFile(paths[0], &stats, &error)) << error;
  EXPECT_GT(stats.functions_encoded, 0);

  // The manifest pins the weights fingerprint: the retrained model may not
  // keep appending to the old model's shards.
  ingest::IngestService mismatched(new_model, MakeConfig(old_dir));
  EXPECT_FALSE(mismatched.Open(&error));
  EXPECT_NE(error.find("fingerprint"), std::string::npos) << error;

  // A stale FENC cache smuggled into a fresh directory is quarantined and
  // rebuilt, never trusted: the digest-named cache file is the same, the
  // weights behind it are not.
  const std::string bytes = ReadFileBytes(paths[0]);
  const std::uint64_t digest = store::ContentDigest64(bytes.data(),
                                                      bytes.size());
  char cache_name[64];
  std::snprintf(cache_name, sizeof(cache_name), "cache/fenc-%016llx.fenc",
                static_cast<unsigned long long>(digest));
  const std::string new_dir = FreshDir("stale_new_idx");
  ingest::IngestService new_service(new_model, MakeConfig(new_dir));
  ASSERT_TRUE(new_service.Open(&error)) << error;
  {
    const std::string stale = ReadFileBytes(old_dir + "/" + cache_name);
    std::vector<std::uint8_t> blob(stale.begin(), stale.end());
    WriteBlob(new_dir + "/" + cache_name, blob);
  }
  ingest::IngestStats rebuilt;
  ASSERT_TRUE(new_service.IngestFile(paths[0], &rebuilt, &error)) << error;
  EXPECT_EQ(rebuilt.cache_hits, 0);
  EXPECT_GT(rebuilt.functions_encoded, 0);
  EXPECT_TRUE(FileExists(new_dir + "/" + cache_name + ".corrupt"))
      << "stale cache was not quarantined";

  // The rebuilt cache is trusted on the next pass (publish-crash + retry).
  EXPECT_EQ(new_service.manifest().sequence, 1u);
}

TEST_F(IngestTest, DeltaVulnSearchScansOnlyNewShards) {
  core::AsteriaModel model(SmallModelConfig());
  const auto corpus = MakeCorpus(3, 19);
  const auto paths = PackImages(corpus, TempPath("delta"), 3);
  const std::string dir = FreshDir("delta_idx");
  std::string error;

  {
    ingest::IngestService service(model, MakeConfig(dir));
    ASSERT_TRUE(service.Open(&error)) << error;
    ingest::IngestStats stats;
    ASSERT_TRUE(service.IngestFile(paths[0], &stats, &error)) << error;
    ASSERT_TRUE(service.IngestFile(paths[1], &stats, &error)) << error;
  }

  // First sweep sees everything and advances the mark.
  ingest::DeltaVulnResult first;
  ASSERT_TRUE(ingest::DeltaVulnSearch(model, dir, 0.95, 4, 1, &first,
                                      &error))
      << error;
  EXPECT_EQ(first.from_seq, 0u);
  EXPECT_EQ(first.to_seq, 2u);
  EXPECT_EQ(first.shards_searched, 2);
  EXPECT_GT(first.entries_searched, 0);
  EXPECT_FALSE(first.per_cve.empty());

  // The third image arrives; a fresh service re-reads the republished
  // manifest (searched_seq advanced past the first two shards).
  int third_entries = 0;
  {
    ingest::IngestService service(model, MakeConfig(dir));
    ASSERT_TRUE(service.Open(&error)) << error;
    EXPECT_EQ(service.manifest().searched_seq, 2u);
    ingest::IngestStats stats;
    ASSERT_TRUE(service.IngestFile(paths[2], &stats, &error)) << error;
    third_entries = stats.functions_indexed;
  }

  // The second sweep scans exactly the new shard...
  ingest::DeltaVulnResult second;
  ASSERT_TRUE(ingest::DeltaVulnSearch(model, dir, 0.95, 4, 1, &second,
                                      &error))
      << error;
  EXPECT_EQ(second.from_seq, 2u);
  EXPECT_EQ(second.shards_searched, 1);
  EXPECT_EQ(second.entries_searched, third_entries);

  // ...and a third sweep has nothing left to do.
  ingest::DeltaVulnResult third;
  ASSERT_TRUE(ingest::DeltaVulnSearch(model, dir, 0.95, 4, 1, &third,
                                      &error))
      << error;
  EXPECT_EQ(third.shards_searched, 0);
  EXPECT_EQ(third.entries_searched, 0);
}

// -- Persistent CVE-alert log ------------------------------------------------

TEST_F(IngestTest, AlertLogRoundTripsAcrossAppends) {
  const std::string dir = FreshDir("alert_rt_idx");
  ASSERT_EQ(::mkdir(dir.c_str(), 0777), 0);
  std::string error;

  // A missing log is an empty log, not an error.
  std::vector<ingest::AlertRecord> read;
  int corrupt = -1;
  ASSERT_TRUE(ingest::ReadAlertLog(dir, &read, &corrupt, &error)) << error;
  EXPECT_TRUE(read.empty());
  EXPECT_EQ(corrupt, 0);

  // Two appends accumulate in order; strings with JSON-hostile characters
  // ("quotes", backslashes, control bytes) survive the codec bitwise.
  ingest::AlertRecord first;
  first.seq = 3;
  first.cve = "CVE-2020-0001";
  first.software = "open\"ssl\\lib";
  first.function = "tls_\x01parse";
  first.hit = "fn42";
  first.score = 0.987654321012345678;
  ingest::AlertRecord second;
  second.seq = 3;
  second.cve = "CVE-2020-0002";
  second.software = "busybox";
  second.function = "ash_eval";
  second.hit = "fn7";
  second.score = 1.0;
  ASSERT_TRUE(ingest::AppendAlerts(dir, {first, second}, &error)) << error;
  ingest::AlertRecord third = first;
  third.seq = 5;
  ASSERT_TRUE(ingest::AppendAlerts(dir, {third}, &error)) << error;

  ASSERT_TRUE(ingest::ReadAlertLog(dir, &read, &corrupt, &error)) << error;
  EXPECT_EQ(corrupt, 0);
  ASSERT_EQ(read.size(), 3u);
  const std::vector<ingest::AlertRecord> want = {first, second, third};
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(read[i].seq, want[i].seq) << "record " << i;
    EXPECT_EQ(read[i].cve, want[i].cve) << "record " << i;
    EXPECT_EQ(read[i].software, want[i].software) << "record " << i;
    EXPECT_EQ(read[i].function, want[i].function) << "record " << i;
    EXPECT_EQ(read[i].hit, want[i].hit) << "record " << i;
    EXPECT_EQ(read[i].score, want[i].score) << "record " << i;  // bitwise
  }
}

TEST_F(IngestTest, AlertLogSkipsTornAndCorruptLinesWithoutFailing) {
  const std::string dir = FreshDir("alert_torn_idx");
  ASSERT_EQ(::mkdir(dir.c_str(), 0777), 0);
  std::string error;
  ingest::AlertRecord good;
  good.seq = 1;
  good.cve = "CVE-2020-0001";
  good.software = "openssl";
  good.function = "tls_parse";
  good.hit = "fn1";
  good.score = 0.5;
  ASSERT_TRUE(ingest::AppendAlerts(dir, {good}, &error)) << error;

  // Simulated disk corruption (CRC mismatch on a framed line) and a
  // simulated crash mid-append (an unterminated tail).
  {
    std::ofstream out(ingest::AlertLogPath(dir),
                      std::ios::binary | std::ios::app);
    ASSERT_TRUE(out.good());
    out << "ALRT deadbeef {\"seq\":9,\"cve\":\"x\",\"software\":\"y\","
           "\"function\":\"z\",\"hit\":\"w\",\"score\":1}\n";
    out << "ALRT 00000000 {\"seq\":9,\"cve\":\"tor";  // no newline: torn
  }
  std::vector<ingest::AlertRecord> read;
  int corrupt = 0;
  ASSERT_TRUE(ingest::ReadAlertLog(dir, &read, &corrupt, &error)) << error;
  ASSERT_EQ(read.size(), 1u);
  EXPECT_EQ(read[0].cve, good.cve);
  EXPECT_EQ(corrupt, 2);
}

TEST_F(IngestTest, DeltaVulnSearchAppendsAlertsAtLeastOnceAcrossCrashes) {
  core::AsteriaModel model(SmallModelConfig());
  const auto corpus = MakeCorpus(2, 23);
  const auto paths = PackImages(corpus, TempPath("alertd"), 2);
  const std::string dir = FreshDir("alertd_idx");
  std::string error;
  {
    ingest::IngestService service(model, MakeConfig(dir));
    ASSERT_TRUE(service.Open(&error)) << error;
    ingest::IngestStats stats;
    ASSERT_TRUE(service.IngestFile(paths[0], &stats, &error)) << error;
    ASSERT_TRUE(service.IngestFile(paths[1], &stats, &error)) << error;
  }

  // A crash in the append itself fails the run before the mark moves: no
  // alerts written, nothing marked searched. Threshold 0.0 guarantees hits.
  Arm("ingest.alert_append=once");
  ingest::DeltaVulnResult crashed;
  EXPECT_FALSE(
      ingest::DeltaVulnSearch(model, dir, 0.0, 4, 1, &crashed, &error));
  EXPECT_NE(error.find("alert_append"), std::string::npos) << error;
  std::vector<ingest::AlertRecord> read;
  int corrupt = 0;
  ASSERT_TRUE(ingest::ReadAlertLog(dir, &read, &corrupt, &error)) << error;
  EXPECT_TRUE(read.empty());

  // A crash after the append but before the manifest publish leaves the
  // alerts durable and the mark unmoved...
  Arm("ingest.publish=once");
  ingest::DeltaVulnResult torn;
  EXPECT_FALSE(ingest::DeltaVulnSearch(model, dir, 0.0, 4, 1, &torn, &error));
  ASSERT_TRUE(ingest::ReadAlertLog(dir, &read, &corrupt, &error)) << error;
  const std::size_t per_run = read.size();
  ASSERT_GT(per_run, 0u);
  EXPECT_EQ(corrupt, 0);

  // ...so the retry re-searches the same shards and re-appends the same
  // records: duplicates (same seq), never lost alerts.
  util::ClearFailpoints();
  ingest::DeltaVulnResult retried;
  ASSERT_TRUE(
      ingest::DeltaVulnSearch(model, dir, 0.0, 4, 1, &retried, &error))
      << error;
  EXPECT_EQ(retried.from_seq, 0u);  // the torn run never advanced the mark
  ASSERT_TRUE(ingest::ReadAlertLog(dir, &read, &corrupt, &error)) << error;
  ASSERT_EQ(read.size(), 2 * per_run);
  for (std::size_t i = 0; i < per_run; ++i) {
    EXPECT_EQ(read[i].seq, read[per_run + i].seq);
    EXPECT_EQ(read[i].cve, read[per_run + i].cve);
    EXPECT_EQ(read[i].hit, read[per_run + i].hit);
    EXPECT_EQ(read[i].score, read[per_run + i].score);
  }

  // A clean follow-up sweep finds nothing new and appends nothing.
  ingest::DeltaVulnResult idle;
  ASSERT_TRUE(ingest::DeltaVulnSearch(model, dir, 0.0, 4, 1, &idle, &error))
      << error;
  EXPECT_EQ(idle.shards_searched, 0);
  std::vector<ingest::AlertRecord> again;
  ASSERT_TRUE(ingest::ReadAlertLog(dir, &again, &corrupt, &error)) << error;
  EXPECT_EQ(again.size(), 2 * per_run);
}

TEST_F(IngestTest, ServeReloadPokeMakesNewShardsQueryable) {
  core::AsteriaModel model(SmallModelConfig());
  const auto corpus = MakeCorpus(2, 20);
  const auto paths = PackImages(corpus, TempPath("poke"), 2);
  const std::string dir = FreshDir("poke_idx");
  const std::string socket = TempPath("poke.sock");
  std::string error;

  ingest::IngestConfig config = MakeConfig(dir);
  config.serve_socket = socket;
  ingest::IngestService service(model, config);
  ASSERT_TRUE(service.Open(&error)) << error;

  // First publish happens before the daemon exists: the poke must degrade
  // to a warning, never an ingest failure.
  ingest::IngestStats stats;
  ASSERT_TRUE(service.IngestFile(paths[0], &stats, &error)) << error;
  const int first_entries = stats.functions_indexed;

  serve::ServerConfig server_config;
  server_config.socket_path = socket;
  server_config.index_path = ManifestPath(dir);
  serve::Server server(model, server_config);
  ASSERT_TRUE(server.Start(&error)) << error;
  std::thread runner([&server] { server.Run(); });

  const auto features = ReferenceFeatures({paths[0]}, 4, 5);
  ASSERT_FALSE(features.empty());
  serve::Client client;
  ASSERT_TRUE(client.Connect(socket, &error, 30)) << error;
  std::vector<core::SearchHit> hits;
  ASSERT_TRUE(client.AboveThreshold(features[0], -1.0, &hits, &error))
      << error;
  EXPECT_EQ(static_cast<int>(hits.size()), first_entries);

  // The second publish pokes the daemon's reload path synchronously: by
  // the time IngestFile returns, the new shard is queryable.
  ingest::IngestStats more;
  ASSERT_TRUE(service.IngestFile(paths[1], &more, &error)) << error;
  ASSERT_TRUE(client.AboveThreshold(features[0], -1.0, &hits, &error))
      << error;
  EXPECT_EQ(static_cast<int>(hits.size()),
            first_entries + more.functions_indexed);

  client.Close();
  server.RequestStop();
  runner.join();
}

}  // namespace
}  // namespace asteria
