// Tests for the ISA-divergence passes added for cross-architecture realism:
// MaskWrapIdiom, ShiftDivision, RotateLoops — plus their semantic safety
// (differential against the interpreter across the affected ISAs).
#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "binary/vm.h"
#include "compiler/compile.h"
#include "compiler/lower.h"
#include "compiler/passes.h"
#include "minic/interp.h"
#include "minic/parser.h"
#include "decompiler/decompile.h"
#include "minic/sema.h"

namespace asteria::compiler {
namespace {

using binary::Isa;
using minic::ArgValue;

minic::Program MustParse(const std::string& source) {
  minic::Program program;
  std::string error;
  EXPECT_TRUE(minic::Parse(source, &program, &error)) << error;
  EXPECT_TRUE(minic::Check(program, &error)) << error;
  return program;
}

int CountOpcode(const binary::BinFunction& fn, Opcode op) {
  int count = 0;
  for (const auto& insn : fn.code) {
    if (insn.op == op) ++count;
  }
  return count;
}

TEST(MaskWrap, RewritesWrapSequenceOnRiscTargets) {
  // Variable index into a power-of-two array triggers the wrap sequence.
  const std::string source =
      "int f(int i) { int a[8]; a[0] = 5; return a[i]; }";
  minic::Program program = MustParse(source);
  auto x86 = CompileProgram(program, Isa::kX86, "m");
  auto ppc = CompileProgram(program, Isa::kPpc, "m");
  ASSERT_TRUE(x86.ok && ppc.ok);
  // x86 keeps the mod-based wrap; PPC collapses it to a mask.
  EXPECT_GE(CountOpcode(x86.module.functions[0], Opcode::kModI), 1);
  EXPECT_EQ(CountOpcode(ppc.module.functions[0], Opcode::kModI), 0);
}

TEST(MaskWrap, PreservesSemanticsIncludingNegatives) {
  const std::string source = "int f(int i) { int a[8]; a[3] = 77; int k; for (k = 0; k < 8; k++) { a[k] = k * k; } return a[i]; }";
  minic::Program program = MustParse(source);
  minic::Interpreter interp(program);
  for (int isa = 0; isa < binary::kNumIsas; ++isa) {
    auto compiled = CompileProgram(program, static_cast<Isa>(isa), "m");
    ASSERT_TRUE(compiled.ok);
    binary::Vm vm(compiled.module);
    for (std::int64_t i : std::vector<std::int64_t>{-17, -8, -1, 0, 3, 7, 8, 100, -100}) {
      const auto expected = interp.Call("f", {ArgValue::Scalar(i)});
      const auto actual = vm.Call("f", {ArgValue::Scalar(i)});
      ASSERT_TRUE(expected.ok && actual.ok);
      EXPECT_EQ(actual.value, expected.value)
          << binary::IsaName(static_cast<Isa>(isa)) << " i=" << i;
    }
  }
}

TEST(MaskWrap, DoesNotFireOnNonPowerOfTwo) {
  minic::Program program =
      MustParse("int f(int i) { int a[8]; return a[i % 5]; }");
  // The source-level %5 compiles to kModI 5 (not a wrap sequence; the wrap
  // of the 8-array applies to the masked value). Non-pow2 mod must survive.
  auto ppc = CompileProgram(program, Isa::kPpc, "m");
  ASSERT_TRUE(ppc.ok);
  EXPECT_GE(CountOpcode(ppc.module.functions[0], Opcode::kModI), 1);
}

TEST(ShiftDivision, RewritesPow2DivOnPpc) {
  minic::Program program = MustParse("int f(int a) { return a / 8; }");
  auto ppc = CompileProgram(program, Isa::kPpc, "m");
  auto x64 = CompileProgram(program, Isa::kX64, "m");
  ASSERT_TRUE(ppc.ok && x64.ok);
  EXPECT_EQ(CountOpcode(ppc.module.functions[0], Opcode::kDivI), 0);
  EXPECT_GE(CountOpcode(x64.module.functions[0], Opcode::kDivI), 1);
}

TEST(ShiftDivision, MatchesTruncatingSemantics) {
  minic::Program program = MustParse("int f(int a) { return a / 16 + a / 2; }");
  minic::Interpreter interp(program);
  auto ppc = CompileProgram(program, Isa::kPpc, "m");
  ASSERT_TRUE(ppc.ok);
  binary::Vm vm(ppc.module);
  for (std::int64_t a : std::vector<std::int64_t>{
           -33, -16, -15, -1, 0, 1, 15, 16, 33,
           std::numeric_limits<std::int64_t>::min(),
           std::numeric_limits<std::int64_t>::max()}) {
    const auto expected = interp.Call("f", {ArgValue::Scalar(a)});
    const auto actual = vm.Call("f", {ArgValue::Scalar(a)});
    ASSERT_TRUE(expected.ok && actual.ok);
    EXPECT_EQ(actual.value, expected.value) << "a=" << a;
  }
}

TEST(RotateLoops, DuplicatesConditionalHeaders) {
  minic::Program program = MustParse(
      "int f(int n) { int s = 0; int i; for (i = 0; i < n; i++) { s += i; } return s; }");
  IrProgram ir;
  std::string error;
  ASSERT_TRUE(LowerProgram(program, &ir, &error)) << error;
  const std::size_t before = ir.functions[0].blocks.size();
  EXPECT_GE(RotateLoops(&ir.functions[0]), 1);
  EXPECT_GT(ir.functions[0].blocks.size(), before);
  ASSERT_TRUE(ir.functions[0].Validate(&error)) << error;
}

TEST(RotateLoops, RotatedIsasDifferInBlockCount) {
  const std::string source =
      "int f(int n) { int s = 0; int i; for (i = 0; i < n; i++) { s += i * n; } return s; }";
  minic::Program program = MustParse(source);
  auto x86 = CompileProgram(program, Isa::kX86, "m");   // no rotation
  auto x64 = CompileProgram(program, Isa::kX64, "m");   // rotation
  ASSERT_TRUE(x86.ok && x64.ok);
  // The rotated build carries the duplicated bottom test.
  EXPECT_GT(x64.module.functions[0].size(), 0);
  int x86_brc = CountOpcode(x86.module.functions[0], Opcode::kBrCond);
  int x64_brc = CountOpcode(x64.module.functions[0], Opcode::kBrCond);
  EXPECT_GT(x64_brc, x86_brc);
}

TEST(RotateLoops, SemanticsPreservedOnNestedLoops) {
  const std::string source = R"(
    int f(int n) {
      int s = 0;
      int i;
      int j;
      for (i = 0; i < n; i++) {
        for (j = 0; j < i; j++) {
          if (j % 3 == 1) { continue; }
          s += i * 10 + j;
          if (s > 500) { break; }
        }
      }
      return s;
    }
  )";
  minic::Program program = MustParse(source);
  minic::Interpreter interp(program);
  for (Isa isa : {Isa::kX64, Isa::kArm}) {
    auto compiled = CompileProgram(program, isa, "m");
    ASSERT_TRUE(compiled.ok);
    binary::Vm vm(compiled.module);
    for (std::int64_t n : std::vector<std::int64_t>{0, 1, 5, 12}) {
      const auto expected = interp.Call("f", {ArgValue::Scalar(n)});
      const auto actual = vm.Call("f", {ArgValue::Scalar(n)});
      ASSERT_TRUE(expected.ok && actual.ok);
      EXPECT_EQ(actual.value, expected.value)
          << binary::IsaName(isa) << " n=" << n;
    }
  }
}

TEST(SwitchStrategy, DiffersPerIsa) {
  const std::string source = R"(
    int f(int n) {
      switch (n) {
        case 0: return 1;
        case 1: return 2;
        case 2: return 3;
        case 3: return 4;
        case 4: return 5;
        default: return 0;
      }
    }
  )";
  minic::Program program = MustParse(source);
  auto x86 = CompileProgram(program, Isa::kX86, "m");
  auto ppc = CompileProgram(program, Isa::kPpc, "m");
  ASSERT_TRUE(x86.ok && ppc.ok);
  // 5 dense cases: x86 uses a jump table, PPC never does.
  EXPECT_EQ(x86.module.functions[0].jump_tables.size(), 1u);
  EXPECT_TRUE(ppc.module.functions[0].jump_tables.empty());
  // And both agree with the interpreter.
  minic::Interpreter interp(program);
  binary::Vm vm_x86(x86.module);
  binary::Vm vm_ppc(ppc.module);
  for (std::int64_t n = -2; n <= 6; ++n) {
    const auto expected = interp.Call("f", {ArgValue::Scalar(n)});
    ASSERT_TRUE(expected.ok);
    EXPECT_EQ(vm_x86.Call("f", {ArgValue::Scalar(n)}).value, expected.value);
    EXPECT_EQ(vm_ppc.Call("f", {ArgValue::Scalar(n)}).value, expected.value);
  }
}

TEST(CalleeCountAtBeta, FiltersBySize) {
  const std::vector<int> sizes = {2, 5, 9, 30};
  EXPECT_EQ(asteria::decompiler::CalleeCountAtBeta(sizes, 0), 4);
  EXPECT_EQ(asteria::decompiler::CalleeCountAtBeta(sizes, 4), 3);
  EXPECT_EQ(asteria::decompiler::CalleeCountAtBeta(sizes, 10), 1);
  EXPECT_EQ(asteria::decompiler::CalleeCountAtBeta(sizes, 100), 0);
}

}  // namespace
}  // namespace asteria::compiler
