// Persistence-layer tests: the chunked container format, model
// checkpoints (incl. the legacy "asteria-params v1" fixture), SearchIndex
// snapshots, and corpus caches. The recurring theme is the error contract:
// corruption, truncation, and mismatched artifacts must fail loudly with a
// descriptive reason and never commit partial state.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "core/asteria.h"
#include "core/search_index.h"
#include "dataset/corpus.h"
#include "dataset/corpus_io.h"
#include "nn/parameter.h"
#include "store/checkpoint.h"
#include "store/container.h"
#include "util/rng.h"

namespace asteria {
namespace {

using ::testing::TempDir;

std::string TempPath(const std::string& name) { return TempDir() + name; }

std::vector<std::uint8_t> ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>());
}

void WriteAll(const std::string& path, const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

// ---------------------------------------------------------------------------
// Container layer

TEST(Crc32, MatchesKnownVectors) {
  // The canonical IEEE check value for "123456789".
  EXPECT_EQ(store::Crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(store::Crc32("", 0), 0u);
  // Chaining two halves must equal one pass.
  const std::uint32_t half = store::Crc32("12345", 5);
  EXPECT_EQ(store::Crc32("6789", 4, half), 0xCBF43926u);
}

TEST(Container, RoundTripsScalarsStringsAndArrays) {
  const std::string path = TempPath("container_roundtrip.bin");
  const std::uint32_t kTag = store::FourCc('T', 'E', 'S', 'T');
  const double values[3] = {1.5, -2.25, 3.75};
  {
    store::ChunkBuilder chunk;
    chunk.PutU8(7);
    chunk.PutU32(0xDEADBEEFu);
    chunk.PutU64(1ull << 40);
    chunk.PutI32(-42);
    chunk.PutI64(-(1ll << 40));
    chunk.PutF64(-0.125);
    chunk.PutString("asteria");
    chunk.PutF64Array(values, 3);

    store::Writer writer;
    std::string error;
    ASSERT_TRUE(writer.Open(path, store::kKindModel, &error)) << error;
    ASSERT_TRUE(writer.WriteChunk(kTag, chunk, &error)) << error;
    ASSERT_TRUE(writer.Finish(&error)) << error;
  }

  ASSERT_TRUE(store::IsContainerFile(path));
  store::Reader reader;
  std::string error;
  ASSERT_TRUE(reader.Open(path, store::kKindModel, &error)) << error;
  EXPECT_EQ(reader.kind(), store::kKindModel);
  EXPECT_EQ(reader.version(), store::kContainerVersion);
  ASSERT_EQ(reader.chunks().size(), 1u);
  EXPECT_EQ(reader.chunks()[0].tag, kTag);

  std::vector<std::uint8_t> payload;
  ASSERT_TRUE(reader.ReadChunk(0, &payload, &error)) << error;
  store::ChunkParser parser(payload);
  std::uint8_t u8 = 0;
  std::uint32_t u32 = 0;
  std::uint64_t u64 = 0;
  std::int32_t i32 = 0;
  std::int64_t i64 = 0;
  double f64 = 0;
  std::string text;
  double array[3] = {0, 0, 0};
  ASSERT_TRUE(parser.GetU8(&u8, &error)) << error;
  ASSERT_TRUE(parser.GetU32(&u32, &error)) << error;
  ASSERT_TRUE(parser.GetU64(&u64, &error)) << error;
  ASSERT_TRUE(parser.GetI32(&i32, &error)) << error;
  ASSERT_TRUE(parser.GetI64(&i64, &error)) << error;
  ASSERT_TRUE(parser.GetF64(&f64, &error)) << error;
  ASSERT_TRUE(parser.GetString(&text, &error)) << error;
  ASSERT_TRUE(parser.GetF64Array(array, 3, &error)) << error;
  EXPECT_EQ(u8, 7);
  EXPECT_EQ(u32, 0xDEADBEEFu);
  EXPECT_EQ(u64, 1ull << 40);
  EXPECT_EQ(i32, -42);
  EXPECT_EQ(i64, -(1ll << 40));
  EXPECT_EQ(f64, -0.125);
  EXPECT_EQ(text, "asteria");
  EXPECT_EQ(array[0], 1.5);
  EXPECT_EQ(array[1], -2.25);
  EXPECT_EQ(array[2], 3.75);
  EXPECT_TRUE(parser.AtEnd());
  // Reading past the end is a clean failure, not a wild read.
  EXPECT_FALSE(parser.GetU32(&u32, &error));
  EXPECT_NE(error.find("overrun"), std::string::npos) << error;
}

TEST(Container, RejectsBadMagic) {
  const std::string path = TempPath("container_bad_magic.bin");
  WriteAll(path, {'n', 'o', 't', 'a', 's', 't', 'o', 'r', 0, 0, 0, 0,
                  0, 0, 0, 0, 0, 0, 0, 0});
  EXPECT_FALSE(store::IsContainerFile(path));
  store::Reader reader;
  std::string error;
  EXPECT_FALSE(reader.Open(path, store::kKindModel, &error));
  EXPECT_NE(error.find("magic"), std::string::npos) << error;
}

TEST(Container, RejectsWrongKind) {
  const std::string path = TempPath("container_wrong_kind.bin");
  store::Writer writer;
  std::string error;
  ASSERT_TRUE(writer.Open(path, store::kKindModel, &error)) << error;
  ASSERT_TRUE(writer.Finish(&error)) << error;

  store::Reader reader;
  EXPECT_FALSE(reader.Open(path, store::kKindIndex, &error));
  EXPECT_NE(error.find("kind"), std::string::npos) << error;
  // expected_kind 0 accepts anything (index-info style inspection).
  store::Reader any;
  EXPECT_TRUE(any.Open(path, 0, &error)) << error;
  EXPECT_EQ(any.kind(), store::kKindModel);
}

TEST(Container, RejectsFutureVersion) {
  const std::string path = TempPath("container_future_version.bin");
  std::vector<std::uint8_t> header = {'A', 'S', 'T', 'R', 'S', 'T', 'O', 'R',
                                      99, 0, 0, 0,   // version 99
                                      'M', 'O', 'D', 'L',
                                      1, 0, 0, 0};   // endian tag + reserved
  WriteAll(path, header);
  store::Reader reader;
  std::string error;
  EXPECT_FALSE(reader.Open(path, store::kKindModel, &error));
  EXPECT_NE(error.find("version"), std::string::npos) << error;
}

TEST(Container, BitFlipFailsCrcCheck) {
  const std::string path = TempPath("container_bitflip.bin");
  {
    store::ChunkBuilder chunk;
    chunk.PutString("payload that will be corrupted");
    store::Writer writer;
    std::string error;
    ASSERT_TRUE(writer.Open(path, store::kKindModel, &error)) << error;
    ASSERT_TRUE(writer.WriteChunk(store::FourCc('D', 'A', 'T', 'A'), chunk,
                                  &error))
        << error;
    ASSERT_TRUE(writer.Finish(&error)) << error;
  }
  std::vector<std::uint8_t> bytes = ReadAll(path);
  bytes.back() ^= 0x01;  // single bit flip in the last payload byte
  WriteAll(path, bytes);

  // The chunk table still scans (sizes are intact)...
  store::Reader reader;
  std::string error;
  ASSERT_TRUE(reader.Open(path, store::kKindModel, &error)) << error;
  // ...but handing out the payload fails the CRC, loudly.
  std::vector<std::uint8_t> payload;
  EXPECT_FALSE(reader.ReadChunk(0, &payload, &error));
  EXPECT_NE(error.find("CRC32 mismatch"), std::string::npos) << error;
}

TEST(Container, TruncationFailsCleanly) {
  const std::string path = TempPath("container_truncated.bin");
  {
    store::ChunkBuilder chunk;
    chunk.PutString("some payload long enough to truncate");
    store::Writer writer;
    std::string error;
    ASSERT_TRUE(writer.Open(path, store::kKindModel, &error)) << error;
    ASSERT_TRUE(writer.WriteChunk(store::FourCc('D', 'A', 'T', 'A'), chunk,
                                  &error))
        << error;
    ASSERT_TRUE(writer.Finish(&error)) << error;
  }
  std::vector<std::uint8_t> bytes = ReadAll(path);
  bytes.resize(bytes.size() - 10);
  WriteAll(path, bytes);

  store::Reader reader;
  std::string error;
  EXPECT_FALSE(reader.Open(path, store::kKindModel, &error));
  EXPECT_NE(error.find("truncated"), std::string::npos) << error;

  // Appending to a truncated container is refused, not papered over.
  store::Writer append;
  error.clear();
  EXPECT_FALSE(append.OpenAppend(path, store::kKindModel, &error));
  EXPECT_NE(error.find("truncated"), std::string::npos) << error;
}

TEST(Container, AppendExtendsChunkSequence) {
  const std::string path = TempPath("container_append.bin");
  const std::uint32_t kTag = store::FourCc('D', 'A', 'T', 'A');
  std::string error;
  {
    store::ChunkBuilder chunk;
    chunk.PutU32(1);
    store::Writer writer;
    ASSERT_TRUE(writer.Open(path, store::kKindIndex, &error)) << error;
    ASSERT_TRUE(writer.WriteChunk(kTag, chunk, &error)) << error;
    ASSERT_TRUE(writer.Finish(&error)) << error;
  }
  {
    store::ChunkBuilder chunk;
    chunk.PutU32(2);
    store::Writer writer;
    ASSERT_TRUE(writer.OpenAppend(path, store::kKindIndex, &error)) << error;
    ASSERT_TRUE(writer.WriteChunk(kTag, chunk, &error)) << error;
    ASSERT_TRUE(writer.Finish(&error)) << error;
  }
  store::Reader reader;
  ASSERT_TRUE(reader.Open(path, store::kKindIndex, &error)) << error;
  ASSERT_EQ(reader.chunks().size(), 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    std::vector<std::uint8_t> payload;
    ASSERT_TRUE(reader.ReadChunk(i, &payload, &error)) << error;
    store::ChunkParser parser(payload);
    std::uint32_t value = 0;
    ASSERT_TRUE(parser.GetU32(&value, &error)) << error;
    EXPECT_EQ(value, i + 1);
  }
}

// ---------------------------------------------------------------------------
// Model checkpoints

// A small two-parameter store with deterministic values.
void FillStore(nn::ParameterStore* params, std::uint64_t seed) {
  util::Rng rng(seed);
  params->CreateXavier("w_left", 3, 4, rng);
  params->CreateXavier("b_out", 4, 1, rng);
}

bool SameValues(const nn::ParameterStore& a, const nn::ParameterStore& b) {
  if (a.parameters().size() != b.parameters().size()) return false;
  for (std::size_t i = 0; i < a.parameters().size(); ++i) {
    const nn::Parameter* pa = a.parameters()[i];
    const nn::Parameter* pb = b.parameters()[i];
    if (pa->name != pb->name || pa->value.size() != pb->value.size() ||
        std::memcmp(pa->value.data(), pb->value.data(),
                    pa->value.size() * sizeof(double)) != 0) {
      return false;
    }
  }
  return true;
}

TEST(Checkpoint, RoundTripsBitwise) {
  const std::string path = TempPath("checkpoint_roundtrip.bin");
  nn::ParameterStore saved;
  FillStore(&saved, 11);
  std::string error;
  ASSERT_TRUE(store::SaveModelCheckpoint(saved, path, &error)) << error;

  nn::ParameterStore loaded;
  FillStore(&loaded, 99);  // different init — must be fully overwritten
  ASSERT_FALSE(SameValues(saved, loaded));
  ASSERT_TRUE(store::LoadModelCheckpoint(&loaded, path, &error)) << error;
  EXPECT_TRUE(SameValues(saved, loaded));
  EXPECT_EQ(store::WeightsFingerprint(saved),
            store::WeightsFingerprint(loaded));
}

TEST(Checkpoint, RejectsShapeMismatchWithoutMutating) {
  const std::string path = TempPath("checkpoint_shape_mismatch.bin");
  nn::ParameterStore saved;
  FillStore(&saved, 11);
  std::string error;
  ASSERT_TRUE(store::SaveModelCheckpoint(saved, path, &error)) << error;

  nn::ParameterStore other;
  util::Rng rng(5);
  other.CreateXavier("w_left", 3, 4, rng);
  other.CreateXavier("b_out", 2, 1, rng);  // wrong shape
  const std::uint32_t before = store::WeightsFingerprint(other);
  EXPECT_FALSE(store::LoadModelCheckpoint(&other, path, &error));
  EXPECT_EQ(store::WeightsFingerprint(other), before);
}

TEST(Checkpoint, BitFlipRejected) {
  const std::string path = TempPath("checkpoint_bitflip.bin");
  nn::ParameterStore saved;
  FillStore(&saved, 11);
  std::string error;
  ASSERT_TRUE(store::SaveModelCheckpoint(saved, path, &error)) << error;
  std::vector<std::uint8_t> bytes = ReadAll(path);
  bytes[bytes.size() / 2] ^= 0x10;
  WriteAll(path, bytes);

  nn::ParameterStore loaded;
  FillStore(&loaded, 99);
  const std::uint32_t before = store::WeightsFingerprint(loaded);
  EXPECT_FALSE(store::LoadModelCheckpoint(&loaded, path, &error));
  EXPECT_EQ(store::WeightsFingerprint(loaded), before);
}

// ---------------------------------------------------------------------------
// Legacy "asteria-params v1" compatibility

TEST(LegacyParams, SavedFileStillLoadsThroughCheckpointApi) {
  const std::string path = TempPath("legacy_saved.params");
  nn::ParameterStore saved;
  FillStore(&saved, 11);
  ASSERT_TRUE(saved.Save(path));  // legacy writer
  EXPECT_FALSE(store::IsContainerFile(path));

  nn::ParameterStore loaded;
  FillStore(&loaded, 99);
  std::string error;
  ASSERT_TRUE(store::LoadModelCheckpoint(&loaded, path, &error)) << error;
  EXPECT_TRUE(SameValues(saved, loaded));
}

TEST(LegacyParams, HandCraftedV1FixtureLoads) {
  // Byte-for-byte what the v1 codec emits: text header, then per parameter
  // "name rows cols\n" + raw little-endian doubles + "\n". Pinning the
  // format here keeps old weight files loadable forever.
  const std::string path = TempPath("legacy_fixture.params");
  const double values[4] = {0.5, -1.0, 2.0, -4.0};
  {
    std::ofstream out(path, std::ios::binary);
    out << "asteria-params v1\n1\nw 2 2\n";
    out.write(reinterpret_cast<const char*>(values), sizeof(values));
    out << "\n";
  }
  nn::ParameterStore params;
  params.Create("w", 2, 2);
  ASSERT_TRUE(params.Load(path));
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(params.parameters()[0]->value[static_cast<std::size_t>(i)],
              values[i]);
  }
}

TEST(LegacyParams, RejectsTruncationWithoutMutating) {
  const std::string path = TempPath("legacy_truncated.params");
  nn::ParameterStore saved;
  FillStore(&saved, 11);
  ASSERT_TRUE(saved.Save(path));
  std::vector<std::uint8_t> bytes = ReadAll(path);
  bytes.resize(bytes.size() - 12);
  WriteAll(path, bytes);

  nn::ParameterStore loaded;
  FillStore(&loaded, 99);
  const std::uint32_t before = store::WeightsFingerprint(loaded);
  EXPECT_FALSE(loaded.Load(path));
  EXPECT_EQ(store::WeightsFingerprint(loaded), before);
}

TEST(LegacyParams, RejectsAbsurdDeclaredCount) {
  const std::string path = TempPath("legacy_absurd_count.params");
  {
    std::ofstream out(path, std::ios::binary);
    out << "asteria-params v1\n999999999\n";
  }
  nn::ParameterStore params;
  params.Create("w", 2, 2);
  EXPECT_FALSE(params.Load(path));
}

TEST(LegacyParams, RejectsCountMismatch) {
  const std::string path = TempPath("legacy_count_mismatch.params");
  nn::ParameterStore saved;
  FillStore(&saved, 11);  // two parameters
  ASSERT_TRUE(saved.Save(path));

  nn::ParameterStore one;
  one.Create("w_left", 3, 4);
  EXPECT_FALSE(one.Load(path));
}

// ---------------------------------------------------------------------------
// SearchIndex snapshots

ast::Ast SyntheticTree(int nodes, util::Rng& rng) {
  ast::Ast tree;
  std::vector<ast::NodeId> pool;
  pool.push_back(tree.AddVar("x"));
  while (tree.size() < nodes) {
    const auto kind = static_cast<ast::NodeKind>(
        rng.NextBounded(static_cast<std::uint64_t>(ast::kNumNodeKinds)));
    const int arity = static_cast<int>(rng.NextBounded(3));
    std::vector<ast::NodeId> children;
    for (int i = 0; i < arity && !pool.empty(); ++i) {
      children.push_back(pool.back());
      pool.pop_back();
    }
    pool.push_back(tree.AddNode(kind, std::move(children)));
  }
  tree.set_root(tree.AddNode(ast::NodeKind::kBlock, pool));
  return tree;
}

std::vector<core::FunctionFeature> SyntheticFeatures(int count,
                                                     std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<core::FunctionFeature> features;
  features.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    core::FunctionFeature feature;
    feature.name = "fn" + std::to_string(i);
    feature.tree = core::AsteriaModel::Preprocess(SyntheticTree(8, rng));
    feature.callee_count = static_cast<int>(rng.NextBounded(6));
    features.push_back(std::move(feature));
  }
  return features;
}

core::AsteriaConfig SmallModelConfig(std::uint64_t seed = 1) {
  core::AsteriaConfig config;
  config.siamese.encoder.embedding_dim = 8;
  config.siamese.encoder.hidden_dim = 8;
  config.seed = seed;
  return config;
}

bool SameIndex(const core::SearchIndex& a, const core::SearchIndex& b) {
  if (a.size() != b.size()) return false;
  for (int i = 0; i < a.size(); ++i) {
    if (a.name(i) != b.name(i) || a.callee_count(i) != b.callee_count(i)) {
      return false;
    }
    const nn::Matrix& ea = a.encoding(i);
    const nn::Matrix& eb = b.encoding(i);
    if (!ea.SameShape(eb) ||
        (ea.size() != 0 && std::memcmp(ea.data(), eb.data(),
                                       ea.size() * sizeof(double)) != 0)) {
      return false;
    }
  }
  return true;
}

TEST(IndexSnapshot, RoundTripsEmptyIndex) {
  const std::string path = TempPath("index_empty.snapshot");
  core::AsteriaModel model(SmallModelConfig());
  core::SearchIndex index(model);
  std::string error;
  ASSERT_TRUE(index.Save(path, &error)) << error;

  core::SearchIndex loaded(model);
  ASSERT_TRUE(loaded.Load(path, &error)) << error;
  EXPECT_EQ(loaded.size(), 0);
}

TEST(IndexSnapshot, RoundTripsSingleEntry) {
  const std::string path = TempPath("index_one.snapshot");
  core::AsteriaModel model(SmallModelConfig());
  core::SearchIndex index(model);
  index.AddAll(SyntheticFeatures(1, 3));
  std::string error;
  ASSERT_TRUE(index.Save(path, &error)) << error;

  core::SearchIndex loaded(model);
  ASSERT_TRUE(loaded.Load(path, &error)) << error;
  EXPECT_TRUE(SameIndex(index, loaded));
}

TEST(IndexSnapshot, RoundTripsThousandEntries) {
  const std::string path = TempPath("index_1k.snapshot");
  core::AsteriaModel model(SmallModelConfig());
  core::SearchIndex index(model, 4);
  const auto features = SyntheticFeatures(1000, 17);
  index.AddAll(features);
  std::string error;
  ASSERT_TRUE(index.Save(path, &error)) << error;

  core::SearchIndex loaded(model, 4);
  ASSERT_TRUE(loaded.Load(path, &error)) << error;
  ASSERT_TRUE(SameIndex(index, loaded));

  // Bitwise-identical online phase from the loaded snapshot.
  const auto expected = index.TopK(features.front(), 10);
  const auto actual = loaded.TopK(features.front(), 10);
  ASSERT_EQ(actual.size(), expected.size());
  for (std::size_t i = 0; i < actual.size(); ++i) {
    EXPECT_EQ(actual[i].index, expected[i].index);
    EXPECT_EQ(actual[i].name, expected[i].name);
    EXPECT_EQ(actual[i].score, expected[i].score);
  }
}

TEST(IndexSnapshot, RejectsDifferentModelWeights) {
  const std::string path = TempPath("index_wrong_model.snapshot");
  core::AsteriaModel model(SmallModelConfig(1));
  core::SearchIndex index(model);
  index.AddAll(SyntheticFeatures(4, 3));
  std::string error;
  ASSERT_TRUE(index.Save(path, &error)) << error;

  core::AsteriaModel other(SmallModelConfig(2));
  core::SearchIndex loaded(other);
  loaded.AddAll(SyntheticFeatures(2, 5));
  EXPECT_FALSE(loaded.Load(path, &error));
  EXPECT_NE(error.find("fingerprint"), std::string::npos) << error;
  EXPECT_EQ(loaded.size(), 2);  // untouched on failure
}

TEST(IndexSnapshot, BitFlipRejectedWithCrcError) {
  const std::string path = TempPath("index_bitflip.snapshot");
  core::AsteriaModel model(SmallModelConfig());
  core::SearchIndex index(model);
  index.AddAll(SyntheticFeatures(4, 3));
  std::string error;
  ASSERT_TRUE(index.Save(path, &error)) << error;
  std::vector<std::uint8_t> bytes = ReadAll(path);
  bytes[bytes.size() - 5] ^= 0x40;  // inside the last entry's payload
  WriteAll(path, bytes);

  core::SearchIndex loaded(model);
  EXPECT_FALSE(loaded.Load(path, &error));
  EXPECT_NE(error.find("CRC32 mismatch"), std::string::npos) << error;
  EXPECT_EQ(loaded.size(), 0);
}

TEST(IndexSnapshot, TruncationRejectedCleanly) {
  const std::string path = TempPath("index_truncated.snapshot");
  core::AsteriaModel model(SmallModelConfig());
  core::SearchIndex index(model);
  index.AddAll(SyntheticFeatures(4, 3));
  std::string error;
  ASSERT_TRUE(index.Save(path, &error)) << error;
  std::vector<std::uint8_t> bytes = ReadAll(path);
  bytes.resize(bytes.size() * 2 / 3);
  WriteAll(path, bytes);

  core::SearchIndex loaded(model);
  EXPECT_FALSE(loaded.Load(path, &error));
  EXPECT_NE(error.find("truncated"), std::string::npos) << error;
  EXPECT_EQ(loaded.size(), 0);
}

TEST(IndexSnapshot, AppendEqualsFullRebuild) {
  const std::string path = TempPath("index_append.snapshot");
  core::AsteriaModel model(SmallModelConfig());
  const auto features = SyntheticFeatures(10, 23);

  // Snapshot of the first 6 entries...
  core::SearchIndex partial(model);
  partial.AddAll({features.begin(), features.begin() + 6});
  std::string error;
  ASSERT_TRUE(partial.Save(path, &error)) << error;

  // ...extended in place with the remaining 4 (no re-encoding of the 6).
  core::SearchIndex full(model);
  full.AddAll(features);
  ASSERT_TRUE(full.AppendTo(path, 6, &error)) << error;

  core::SearchIndex loaded(model);
  ASSERT_TRUE(loaded.Load(path, &error)) << error;
  EXPECT_TRUE(SameIndex(full, loaded));
}

TEST(IndexSnapshot, AppendRefusesDifferentModelWeights) {
  const std::string path = TempPath("index_append_wrong_model.snapshot");
  core::AsteriaModel model(SmallModelConfig(1));
  core::SearchIndex index(model);
  index.AddAll(SyntheticFeatures(4, 3));
  std::string error;
  ASSERT_TRUE(index.Save(path, &error)) << error;

  core::AsteriaModel other(SmallModelConfig(2));
  core::SearchIndex extender(other);
  extender.AddAll(SyntheticFeatures(6, 7));
  EXPECT_FALSE(extender.AppendTo(path, 4, &error));
  EXPECT_NE(error.find("fingerprint"), std::string::npos) << error;
}

// ---------------------------------------------------------------------------
// Corpus cache

dataset::CorpusConfig TinyCorpusConfig() {
  dataset::CorpusConfig config;
  config.packages = 2;
  config.seed = 777;
  return config;
}

void ExpectSameCorpus(const dataset::Corpus& a, const dataset::Corpus& b) {
  ASSERT_EQ(a.functions.size(), b.functions.size());
  EXPECT_EQ(a.index, b.index);
  EXPECT_EQ(a.binaries_per_isa, b.binaries_per_isa);
  EXPECT_EQ(a.functions_per_isa, b.functions_per_isa);
  EXPECT_EQ(a.filtered_small, b.filtered_small);
  for (std::size_t i = 0; i < a.functions.size(); ++i) {
    const dataset::CorpusFunction& fa = a.functions[i];
    const dataset::CorpusFunction& fb = b.functions[i];
    ASSERT_EQ(fa.package, fb.package);
    ASSERT_EQ(fa.function, fb.function);
    ASSERT_EQ(fa.isa, fb.isa);
    ASSERT_EQ(fa.ast_size, fb.ast_size);
    ASSERT_EQ(fa.callee_count, fb.callee_count);
    ASSERT_EQ(fa.callee_sizes, fb.callee_sizes);
    ASSERT_EQ(fa.instruction_count, fb.instruction_count);
    ASSERT_EQ(fa.preprocessed.size(), fb.preprocessed.size());
    ASSERT_EQ(fa.preprocessed.root(), fb.preprocessed.root());
    for (int n = 0; n < fa.preprocessed.size(); ++n) {
      const ast::BinaryNode& na = fa.preprocessed.node(n);
      const ast::BinaryNode& nb = fb.preprocessed.node(n);
      ASSERT_EQ(na.label, nb.label);
      ASSERT_EQ(na.payload_bucket, nb.payload_bucket);
      ASSERT_EQ(na.left, nb.left);
      ASSERT_EQ(na.right, nb.right);
    }
  }
}

TEST(CorpusCache, RoundTripsBuiltCorpus) {
  const std::string path = TempPath("corpus_roundtrip.snapshot");
  const dataset::CorpusConfig config = TinyCorpusConfig();
  const dataset::Corpus built = dataset::BuildCorpus(config);
  ASSERT_GT(built.functions.size(), 0u);
  std::string error;
  ASSERT_TRUE(dataset::SaveCorpus(built, config, path, &error)) << error;

  dataset::Corpus loaded;
  ASSERT_TRUE(dataset::LoadCorpus(&loaded, config, path, &error)) << error;
  ExpectSameCorpus(built, loaded);
}

TEST(CorpusCache, RejectsStaleConfigFingerprint) {
  const std::string path = TempPath("corpus_stale.snapshot");
  const dataset::CorpusConfig config = TinyCorpusConfig();
  const dataset::Corpus built = dataset::BuildCorpus(config);
  std::string error;
  ASSERT_TRUE(dataset::SaveCorpus(built, config, path, &error)) << error;

  dataset::CorpusConfig other = config;
  other.seed += 1;
  EXPECT_NE(dataset::CorpusConfigFingerprint(config),
            dataset::CorpusConfigFingerprint(other));
  dataset::Corpus loaded;
  EXPECT_FALSE(dataset::LoadCorpus(&loaded, other, path, &error));
  EXPECT_TRUE(loaded.functions.empty());

  // Thread count must NOT invalidate the cache (determinism contract).
  dataset::CorpusConfig threaded = config;
  threaded.threads = 8;
  EXPECT_EQ(dataset::CorpusConfigFingerprint(config),
            dataset::CorpusConfigFingerprint(threaded));
}

TEST(CorpusCache, BuildOrLoadWritesThenReusesCache) {
  const std::string path = TempPath("corpus_build_or_load.snapshot");
  std::remove(path.c_str());
  const dataset::CorpusConfig config = TinyCorpusConfig();
  const dataset::Corpus first = dataset::BuildOrLoadCorpus(config, path);
  // The miss must have written a cache...
  ASSERT_TRUE(store::IsContainerFile(path));
  // ...that the second call loads to the same corpus.
  const dataset::Corpus second = dataset::BuildOrLoadCorpus(config, path);
  ExpectSameCorpus(first, second);
}

}  // namespace
}  // namespace asteria
