// Tests for the wide-event request log (src/util/request_log.h): the
// wait-free ring (wrap, concurrent appenders, seqlock snapshots), trace-id
// minting, and the CRC-line file framing shared by slow.jsonl and the
// --request_log_out dumps (docs/OBSERVABILITY.md "Per-request tracing").
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <cstring>
#include <fstream>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "util/request_log.h"

namespace asteria::util {
namespace {

using ::testing::TempDir;

std::string TempPath(const std::string& name) { return TempDir() + name; }

RequestRecord MakeRecord(std::uint64_t i) {
  RequestRecord record;
  record.trace_id = 0x1000 + i;
  record.end_nanos = static_cast<std::int64_t>(i);
  record.op = "serve.topk";
  record.outcome = RequestOutcome::kOk;
  record.batch_size = static_cast<std::uint32_t>(1 + i % 7);
  record.queue_wait_nanos = 10 * i;
  record.encode_nanos = 20 * i;
  record.score_nanos = 30 * i;
  record.reply_nanos = 40 * i;
  record.scored_pairs = i;
  record.pruned_pairs = 2 * i;
  record.SetName("fn" + std::to_string(i));
  return record;
}

class RequestLogTest : public ::testing::Test {
 protected:
  void SetUp() override { GlobalRequestLog().ResetForTest(); }
  void TearDown() override { GlobalRequestLog().ResetForTest(); }
};

TEST_F(RequestLogTest, AppendAndSnapshotRoundTrip) {
  RequestLog& log = GlobalRequestLog();
  for (std::uint64_t i = 0; i < 5; ++i) log.Append(MakeRecord(i));
  EXPECT_EQ(log.Appended(), 5u);

  const std::vector<RequestRecord> records = log.Snapshot();
  ASSERT_EQ(records.size(), 5u);
  for (std::uint64_t i = 0; i < 5; ++i) {
    const RequestRecord& record = records[i];  // oldest first
    EXPECT_EQ(record.trace_id, 0x1000 + i);
    EXPECT_STREQ(record.op, "serve.topk");
    EXPECT_EQ(record.outcome, RequestOutcome::kOk);
    EXPECT_EQ(record.batch_size, 1 + i % 7);
    EXPECT_EQ(record.queue_wait_nanos, 10 * i);
    EXPECT_EQ(record.encode_nanos, 20 * i);
    EXPECT_EQ(record.score_nanos, 30 * i);
    EXPECT_EQ(record.reply_nanos, 40 * i);
    EXPECT_EQ(record.scored_pairs, i);
    EXPECT_EQ(record.pruned_pairs, 2 * i);
    EXPECT_EQ(record.TotalNanos(), 100 * i);
    EXPECT_STREQ(record.name, ("fn" + std::to_string(i)).c_str());
  }
}

TEST_F(RequestLogTest, RingWrapKeepsTheNewestRecords) {
  RequestLog& log = GlobalRequestLog();
  const std::uint64_t total = RequestLog::kCapacity + 100;
  for (std::uint64_t i = 0; i < total; ++i) log.Append(MakeRecord(i));
  EXPECT_EQ(log.Appended(), total);

  const std::vector<RequestRecord> records = log.Snapshot();
  ASSERT_EQ(records.size(), RequestLog::kCapacity);
  // The 100 oldest were overwritten; what's left is [100, total), in order.
  EXPECT_EQ(records.front().trace_id, 0x1000 + 100);
  EXPECT_EQ(records.back().trace_id, 0x1000 + total - 1);
  for (std::size_t i = 1; i < records.size(); ++i) {
    EXPECT_EQ(records[i].trace_id, records[i - 1].trace_id + 1);
  }
}

TEST_F(RequestLogTest, ConcurrentAppendersNeverTearRecords) {
  // TSan coverage for the seqlock: 8 writers hammer the ring while readers
  // snapshot mid-storm. Every surfaced record must be internally consistent
  // (all fields derived from the same i), never a mix of two writes.
  RequestLog& log = GlobalRequestLog();
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 2000;
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&log, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        log.Append(MakeRecord(static_cast<std::uint64_t>(t) * kPerThread + i));
        if (i % 512 == 0) (void)log.Snapshot();  // readers race the writers
      }
    });
  }
  for (std::thread& writer : writers) writer.join();
  EXPECT_EQ(log.Appended(), kThreads * kPerThread);

  const std::vector<RequestRecord> records = log.Snapshot();
  EXPECT_LE(records.size(), RequestLog::kCapacity);
  EXPECT_GT(records.size(), 0u);
  for (const RequestRecord& record : records) {
    const std::uint64_t i = record.trace_id - 0x1000;
    EXPECT_LT(i, kThreads * kPerThread);
    EXPECT_EQ(record.queue_wait_nanos, 10 * i) << "torn record";
    EXPECT_EQ(record.reply_nanos, 40 * i) << "torn record";
    EXPECT_STREQ(record.name, ("fn" + std::to_string(i)).c_str());
  }
}

TEST_F(RequestLogTest, MintTraceIdIsNonzeroAndUnique) {
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 10000; ++i) {
    const std::uint64_t id = MintTraceId();
    EXPECT_NE(id, 0u);
    EXPECT_TRUE(seen.insert(id).second) << "duplicate trace id";
  }
}

TEST_F(RequestLogTest, SetNameTruncatesToTheRecordBudget) {
  RequestRecord record;
  record.SetName(std::string(200, 'x'));
  EXPECT_EQ(std::strlen(record.name), kRequestNameBytes - 1);
  record.SetName("short");
  EXPECT_STREQ(record.name, "short");  // shorter name fully replaces longer
}

TEST_F(RequestLogTest, FileRoundTripPreservesEveryField) {
  const std::string path = TempPath("reqlog_rt.jsonl");
  std::vector<RequestRecord> records;
  records.push_back(MakeRecord(3));
  // A record with the awkward bits: deadline armed, slack negative (already
  // expired), a name needing JSON escapes.
  RequestRecord hard = MakeRecord(4);
  hard.outcome = RequestOutcome::kDeadlineExceeded;
  hard.has_deadline = true;
  hard.deadline_slack_nanos = -123456789;
  hard.SetName("fn\"quoted\\path");
  records.push_back(hard);

  std::string error;
  ASSERT_TRUE(WriteRequestLogFile(path, records, &error)) << error;
  std::vector<ParsedRequestRecord> parsed;
  int corrupt = -1;
  ASSERT_TRUE(ReadRequestLogFile(path, &parsed, &corrupt, &error)) << error;
  EXPECT_EQ(corrupt, 0);
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0].trace_id, 0x1003u);
  EXPECT_EQ(parsed[0].op, "serve.topk");
  EXPECT_EQ(parsed[0].outcome, "ok");
  EXPECT_EQ(parsed[0].name, "fn3");
  EXPECT_EQ(parsed[0].batch_size, 4u);
  EXPECT_EQ(parsed[0].queue_wait_nanos, 30u);
  EXPECT_EQ(parsed[0].encode_nanos, 60u);
  EXPECT_EQ(parsed[0].score_nanos, 90u);
  EXPECT_EQ(parsed[0].reply_nanos, 120u);
  EXPECT_EQ(parsed[0].scored_pairs, 3u);
  EXPECT_EQ(parsed[0].pruned_pairs, 6u);
  EXPECT_FALSE(parsed[0].has_deadline);
  EXPECT_EQ(parsed[0].deadline_slack_nanos, 0);
  EXPECT_EQ(parsed[1].outcome, "deadline_exceeded");
  EXPECT_EQ(parsed[1].name, "fn\"quoted\\path");
  EXPECT_TRUE(parsed[1].has_deadline);
  EXPECT_EQ(parsed[1].deadline_slack_nanos, -123456789);
}

TEST_F(RequestLogTest, AppendAccumulatesAcrossBatches) {
  const std::string path = TempPath("reqlog_append.jsonl");
  ::unlink(path.c_str());
  std::string error;
  ASSERT_TRUE(AppendRequestRecords(path, {MakeRecord(1)}, &error)) << error;
  ASSERT_TRUE(AppendRequestRecords(path, {MakeRecord(2), MakeRecord(3)},
                                   &error))
      << error;
  EXPECT_TRUE(AppendRequestRecords(path, {}, &error));  // no-op, no file churn

  std::vector<ParsedRequestRecord> parsed;
  int corrupt = 0;
  ASSERT_TRUE(ReadRequestLogFile(path, &parsed, &corrupt, &error)) << error;
  EXPECT_EQ(corrupt, 0);
  ASSERT_EQ(parsed.size(), 3u);
  EXPECT_EQ(parsed[0].trace_id, 0x1001u);
  EXPECT_EQ(parsed[2].trace_id, 0x1003u);
}

TEST_F(RequestLogTest, CorruptLinesAreCountedNotFatal) {
  const std::string path = TempPath("reqlog_corrupt.jsonl");
  const std::string good = RequestRecordLine(MakeRecord(9));
  std::string flipped = good;
  flipped[flipped.size() / 2] ^= 0x01;  // body no longer matches the CRC

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << good;
  out << "not a SLOW line at all\n";
  out << flipped;
  out << good;
  out << "SLOW zzzzzzzz {\"trace\":\"0\"}\n";  // unparseable CRC hex
  out << good.substr(0, good.size() / 2);      // torn tail, no newline
  out.close();

  std::vector<ParsedRequestRecord> parsed;
  int corrupt = 0;
  std::string error;
  ASSERT_TRUE(ReadRequestLogFile(path, &parsed, &corrupt, &error)) << error;
  ASSERT_EQ(parsed.size(), 2u);  // the two intact lines
  EXPECT_EQ(corrupt, 4);
  for (const ParsedRequestRecord& record : parsed) {
    EXPECT_EQ(record.trace_id, 0x1009u);
    EXPECT_EQ(record.name, "fn9");
  }

  // A missing file is the only fatal case.
  EXPECT_FALSE(
      ReadRequestLogFile(TempPath("reqlog_missing.jsonl"), &parsed, &corrupt,
                         &error));
}

}  // namespace
}  // namespace asteria::util
