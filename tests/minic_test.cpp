// MiniC front-end tests: lexer, parser, sema, printer round-trip, and
// interpreter semantics.
#include <gtest/gtest.h>

#include "minic/interp.h"
#include "minic/lexer.h"
#include "minic/parser.h"
#include "minic/printer.h"
#include "minic/sema.h"

namespace asteria::minic {
namespace {

Program MustParse(const std::string& source) {
  Program program;
  std::string error;
  EXPECT_TRUE(Parse(source, &program, &error)) << error;
  EXPECT_TRUE(Check(program, &error)) << error;
  return program;
}

std::int64_t Eval(const Program& program, const std::string& fn,
                 std::vector<ArgValue> args = {}) {
  Interpreter interp(program);
  auto result = interp.Call(fn, std::move(args));
  EXPECT_TRUE(result.ok) << result.trap;
  return result.value;
}

TEST(Lexer, TokenizesOperators) {
  auto tokens = Lex("a += b << 2; c &&= 1");
  ASSERT_FALSE(tokens.empty());
  EXPECT_EQ(tokens[0].kind, TokenKind::kIdent);
  EXPECT_EQ(tokens[1].kind, TokenKind::kPlusAssign);
  EXPECT_EQ(tokens[3].kind, TokenKind::kShl);
}

TEST(Lexer, SkipsComments) {
  auto tokens = Lex("// line\nint /* block */ x");
  ASSERT_GE(tokens.size(), 3u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kKwInt);
  EXPECT_EQ(tokens[1].kind, TokenKind::kIdent);
}

TEST(Lexer, ReportsUnterminatedString) {
  auto tokens = Lex("int f() { g(\"abc); }");
  EXPECT_EQ(tokens.back().kind, TokenKind::kError);
}

TEST(Parser, ParsesFunctionWithParams) {
  Program program = MustParse("int add(int a, int b) { return a + b; }");
  ASSERT_EQ(program.functions().size(), 1u);
  EXPECT_EQ(program.functions()[0].name, "add");
  EXPECT_EQ(program.functions()[0].params.size(), 2u);
}

TEST(Parser, RejectsMissingSemicolon) {
  Program program;
  std::string error;
  EXPECT_FALSE(Parse("int f() { return 1 }", &program, &error));
  EXPECT_NE(error.find("line"), std::string::npos);
}

TEST(Parser, ParsesControlFlow) {
  MustParse(R"(
    int f(int n) {
      int s = 0;
      for (s = 0; n > 0; n--) { s += n; }
      while (s > 100) { s /= 2; }
      if (s == 7) { return 1; } else { return s; }
    }
  )");
}

TEST(Parser, ParsesSwitchAndGoto) {
  MustParse(R"(
    int f(int n) {
      switch (n) {
        case 1: return 10;
        case 2: return 20;
        default: goto out;
      }
      out: return 0;
    }
  )");
}

TEST(Sema, RejectsUndeclaredVariable) {
  Program program;
  std::string error;
  ASSERT_TRUE(Parse("int f() { return x; }", &program, &error));
  EXPECT_FALSE(Check(program, &error));
  EXPECT_NE(error.find("undeclared"), std::string::npos);
}

TEST(Sema, RejectsScalarIndexing) {
  Program program;
  std::string error;
  ASSERT_TRUE(Parse("int f(int x) { return x[0]; }", &program, &error));
  EXPECT_FALSE(Check(program, &error));
}

TEST(Sema, RejectsWrongArity) {
  Program program;
  std::string error;
  ASSERT_TRUE(Parse("int g(int a) { return a; } int f() { return g(1, 2); }",
                    &program, &error));
  EXPECT_FALSE(Check(program, &error));
}

TEST(Sema, RejectsArrayScalarMismatch) {
  Program program;
  std::string error;
  ASSERT_TRUE(Parse("int g(int a[]) { return a[0]; } int f(int x) { return g(x); }",
                    &program, &error));
  EXPECT_FALSE(Check(program, &error));
}

TEST(Sema, RejectsBreakOutsideLoop) {
  Program program;
  std::string error;
  ASSERT_TRUE(Parse("int f() { break; return 0; }", &program, &error));
  EXPECT_FALSE(Check(program, &error));
}

TEST(Sema, RejectsGotoUnknownLabel) {
  Program program;
  std::string error;
  ASSERT_TRUE(Parse("int f() { goto nowhere; return 0; }", &program, &error));
  EXPECT_FALSE(Check(program, &error));
}

TEST(Sema, AllowsShadowing) {
  MustParse("int f(int x) { { int x = 2; x += 1; } return x; }");
}

TEST(Printer, RoundTripsThroughParser) {
  const std::string source = R"(
    int helper(int a[], int n) {
      int s = 0;
      int i;
      for (i = 0; i < n; i++) { s += a[i & 7]; }
      return s;
    }
    int f(int n) {
      int buf[8];
      int i = 0;
      while (i < 8) { buf[i] = i * 3; i++; }
      switch (n) { case 0: return helper(buf, 8); default: return n % 5; }
    }
  )";
  Program p1 = MustParse(source);
  const std::string printed1 = Print(p1);
  Program p2 = MustParse(printed1);
  const std::string printed2 = Print(p2);
  EXPECT_EQ(printed1, printed2);
}

TEST(Interp, Arithmetic) {
  Program program = MustParse("int f(int a, int b) { return a * 3 + b / 2 - (a % b); }");
  EXPECT_EQ(Eval(program, "f", {ArgValue::Scalar(10), ArgValue::Scalar(4)}),
            10 * 3 + 4 / 2 - (10 % 4));
}

TEST(Interp, DivisionByZeroIsZero) {
  Program program = MustParse("int f(int a) { return a / 0 + a % 0; }");
  EXPECT_EQ(Eval(program, "f", {ArgValue::Scalar(42)}), 0);
}

TEST(Interp, ShortCircuit) {
  // The second operand would return early if evaluated: use side effects.
  Program program = MustParse(R"(
    int f(int a) {
      int hits = 0;
      int r = (a > 0) || (hits = 1);
      int r2 = (a > 0) && (hits = 1);
      return hits * 10 + r * 2 + r2;
    }
  )");
  EXPECT_EQ(Eval(program, "f", {ArgValue::Scalar(5)}), 1 * 10 + 2 + 1);
  EXPECT_EQ(Eval(program, "f", {ArgValue::Scalar(-5)}), 1 * 10 + 1 * 2 + 0);
}

TEST(Interp, LoopsAndArrays) {
  Program program = MustParse(R"(
    int f(int n) {
      int a[10];
      int i;
      for (i = 0; i < n; i++) { a[i] = i * i; }
      int s = 0;
      for (i = 0; i < n; i++) { s += a[i]; }
      return s;
    }
  )");
  EXPECT_EQ(Eval(program, "f", {ArgValue::Scalar(5)}), 0 + 1 + 4 + 9 + 16);
}

TEST(Interp, ArrayIndexWraps) {
  Program program = MustParse(R"(
    int f() {
      int a[4];
      a[0] = 7;
      return a[4] + a[-4];  // both wrap to index 0
    }
  )");
  EXPECT_EQ(Eval(program, "f"), 14);
}

TEST(Interp, ArrayArgumentsMutate) {
  Program program = MustParse(R"(
    int fill(int a[], int n) {
      int i;
      for (i = 0; i < n; i++) { a[i] = i + 1; }
      return n;
    }
  )");
  Interpreter interp(program);
  auto result = interp.Call(
      "fill", {ArgValue::Array({0, 0, 0}), ArgValue::Scalar(3)});
  ASSERT_TRUE(result.ok);
  ASSERT_EQ(result.arrays.size(), 1u);
  EXPECT_EQ(result.arrays[0], (std::vector<std::int64_t>{1, 2, 3}));
}

TEST(Interp, Recursion) {
  Program program = MustParse(
      "int fib(int n) { if (n < 2) { return n; } return fib(n-1) + fib(n-2); }");
  EXPECT_EQ(Eval(program, "fib", {ArgValue::Scalar(10)}), 55);
}

TEST(Interp, SwitchDispatch) {
  Program program = MustParse(R"(
    int f(int n) {
      switch (n) {
        case 1: return 11;
        case 2: return 22;
        case 5: return 55;
        default: return -1;
      }
    }
  )");
  EXPECT_EQ(Eval(program, "f", {ArgValue::Scalar(2)}), 22);
  EXPECT_EQ(Eval(program, "f", {ArgValue::Scalar(3)}), -1);
  EXPECT_EQ(Eval(program, "f", {ArgValue::Scalar(5)}), 55);
}

TEST(Interp, GotoForwardAndCleanupPattern) {
  Program program = MustParse(R"(
    int f(int n) {
      int r = 0;
      if (n < 0) { goto fail; }
      r = n * 2;
      goto done;
      fail: r = -1;
      done: return r;
    }
  )");
  EXPECT_EQ(Eval(program, "f", {ArgValue::Scalar(21)}), 42);
  EXPECT_EQ(Eval(program, "f", {ArgValue::Scalar(-1)}), -1);
}

TEST(Interp, PostAndPreIncrement) {
  Program program = MustParse(R"(
    int f() {
      int x = 5;
      int a = x++;
      int b = ++x;
      int c = x--;
      int d = --x;
      return a * 1000 + b * 100 + c * 10 + d;
    }
  )");
  EXPECT_EQ(Eval(program, "f"), 5 * 1000 + 7 * 100 + 7 * 10 + 5);
}

TEST(Interp, SideEffectEvaluationOrder) {
  Program program = MustParse(R"(
    int f() {
      int x = 1;
      return x + (x = 3);
    }
  )");
  EXPECT_EQ(Eval(program, "f"), 4);
}

TEST(Interp, StepLimitTrapsOnInfiniteLoop) {
  Program program = MustParse("int f() { while (1) { } return 0; }");
  Interpreter::Options options;
  options.max_steps = 10'000;
  Interpreter interp(program, options);
  auto result = interp.Call("f", {});
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.trap.find("step limit"), std::string::npos);
}

TEST(Interp, StringLiteralScalarIsLength) {
  Program program = MustParse(R"(
    int len(int s[]) { int n = 0; while (s[n] != 0) { n++; } return n; }
    int f() { return len("hello") + "abc"; }
  )");
  EXPECT_EQ(Eval(program, "f"), 5 + 3);
}

TEST(Interp, CompoundAssignEvaluatesIndexOnce) {
  Program program = MustParse(R"(
    int f() {
      int a[4];
      int i = 0;
      a[0] = 10;
      a[i++] += 5;
      return a[0] * 10 + i;
    }
  )");
  EXPECT_EQ(Eval(program, "f"), 15 * 10 + 1);
}

TEST(Semantics, WrapIndexEuclidean) {
  EXPECT_EQ(semantics::WrapIndex(5, 4), 1);
  EXPECT_EQ(semantics::WrapIndex(-1, 4), 3);
  EXPECT_EQ(semantics::WrapIndex(-4, 4), 0);
  EXPECT_EQ(semantics::WrapIndex(0, 4), 0);
}

TEST(Semantics, OverflowWraps) {
  EXPECT_EQ(semantics::Add(std::numeric_limits<std::int64_t>::max(), 1),
            std::numeric_limits<std::int64_t>::min());
  EXPECT_EQ(semantics::Mul(std::numeric_limits<std::int64_t>::min(), -1),
            std::numeric_limits<std::int64_t>::min());
  EXPECT_EQ(semantics::Div(std::numeric_limits<std::int64_t>::min(), -1),
            std::numeric_limits<std::int64_t>::min());
}

TEST(Semantics, ShiftsMaskAmount) {
  EXPECT_EQ(semantics::Shl(1, 64), 1);  // 64 & 63 == 0
  EXPECT_EQ(semantics::Shr(-8, 1), -4);  // arithmetic
}

}  // namespace
}  // namespace asteria::minic
