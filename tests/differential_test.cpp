// The DESIGN.md §6 oracle in one place: ~50 seeded generator programs run
// through the MiniC interpreter (source semantics) and the compiled VM on
// all four ISAs, asserting identical Result values, trap status, and array
// out-contents. dataset_test.cpp checks narrower slices of this property;
// this suite is the end-to-end compiler/VM correctness net.
#include <gtest/gtest.h>

#include <vector>

#include "binary/vm.h"
#include "compiler/compile.h"
#include "dataset/generator.h"
#include "minic/interp.h"
#include "minic/printer.h"
#include "minic/sema.h"

namespace asteria {
namespace {

using minic::ArgValue;

// Deterministic argument sets: a couple of scalar/array mixes per signature.
// Array arguments must have >= 8 elements: generated callees treat an
// unknown-extent parameter as a size-8 window and mask indices with & 7
// (dataset/generator.cpp), so smaller arrays are outside the generator's
// input contract and interpreter/VM wrap behavior may legitimately differ.
std::vector<ArgValue> MakeArgs(const minic::Function& fn, util::Rng& rng) {
  std::vector<ArgValue> args;
  for (const minic::Param& param : fn.params) {
    if (param.is_array) {
      std::vector<std::int64_t> data(static_cast<std::size_t>(rng.NextInt(8, 16)));
      for (auto& x : data) x = rng.NextInt(-1000, 1000);
      args.push_back(ArgValue::Array(std::move(data)));
    } else {
      args.push_back(ArgValue::Scalar(rng.NextInt(-100, 100)));
    }
  }
  return args;
}

class Differential : public ::testing::TestWithParam<int> {};

TEST_P(Differential, InterpreterAndVmAgreeOnAllIsas) {
  dataset::GeneratorConfig config;
  // Distinct seed stream from dataset_test's GeneratorProperty suite so the
  // two nets cover different programs.
  util::Rng rng(util::Rng::DeriveSeed(0xd1f5, static_cast<std::uint64_t>(GetParam())));
  const minic::Program program = dataset::GenerateProgram(config, rng);
  std::string error;
  ASSERT_TRUE(minic::Check(program, &error))
      << error << "\n" << minic::Print(program);

  std::vector<binary::BinModule> modules;
  for (int isa = 0; isa < binary::kNumIsas; ++isa) {
    auto compiled = compiler::CompileProgram(
        program, static_cast<binary::Isa>(isa), "diff");
    ASSERT_TRUE(compiled.ok) << compiled.error;
    modules.push_back(std::move(compiled.module));
  }

  minic::Interpreter::Options interp_options;
  interp_options.max_steps = 4'000'000;
  minic::Interpreter interp(program, interp_options);
  for (const minic::Function& fn : program.functions()) {
    for (int trial = 0; trial < 2; ++trial) {
      const std::vector<ArgValue> args = MakeArgs(fn, rng);
      const auto expected = interp.Call(fn.name, args);
      // The generator guarantees termination, so the oracle must not trap.
      ASSERT_TRUE(expected.ok)
          << fn.name << " trapped: " << expected.trap << "\n"
          << minic::Print(program);
      for (const binary::BinModule& module : modules) {
        binary::Vm::Options vm_options;
        vm_options.max_steps = 16'000'000;
        binary::Vm vm(module, vm_options);
        const auto actual = vm.Call(fn.name, args);
        // Identical trap status (both clean here), return value, and the
        // full post-call contents of every array argument.
        EXPECT_EQ(actual.ok, expected.ok)
            << binary::IsaName(module.isa) << "/" << fn.name << ": "
            << actual.trap;
        EXPECT_EQ(actual.trap, expected.trap)
            << binary::IsaName(module.isa) << "/" << fn.name;
        EXPECT_EQ(actual.value, expected.value)
            << binary::IsaName(module.isa) << "/" << fn.name << "\n"
            << minic::Print(program);
        EXPECT_EQ(actual.arrays, expected.arrays)
            << binary::IsaName(module.isa) << "/" << fn.name;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Differential, ::testing::Range(0, 50));

}  // namespace
}  // namespace asteria
