// nn tests: matrix kernels, autograd gradient checks against central finite
// differences (every op + composite graphs), optimizers, parameter store.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <functional>

#include "nn/autograd.h"
#include "nn/optimizer.h"
#include "util/rng.h"

namespace asteria::nn {
namespace {

TEST(Matrix, MatMulSmall) {
  Matrix a(2, 3, {1, 2, 3, 4, 5, 6});
  Matrix b(3, 2, {7, 8, 9, 10, 11, 12});
  Matrix c = MatMul(a, b);
  EXPECT_DOUBLE_EQ(c(0, 0), 58);
  EXPECT_DOUBLE_EQ(c(0, 1), 64);
  EXPECT_DOUBLE_EQ(c(1, 0), 139);
  EXPECT_DOUBLE_EQ(c(1, 1), 154);
}

TEST(Matrix, TransposedProducts) {
  Matrix a(3, 2, {1, 2, 3, 4, 5, 6});
  Matrix b(3, 2, {7, 8, 9, 10, 11, 12});
  // a^T b == (2x3)(3x2)
  Matrix atb = MatMulTransA(a, b);
  EXPECT_DOUBLE_EQ(atb(0, 0), 1 * 7 + 3 * 9 + 5 * 11);
  // a b^T == (3x2)(2x3)
  Matrix abt = MatMulTransB(a, b);
  EXPECT_DOUBLE_EQ(abt(0, 0), 1 * 7 + 2 * 8);
}

// ---- gradient checking machinery ----------------------------------------

// Builds a loss from `params` through `graph`, then checks every analytic
// gradient against central finite differences.
void GradCheck(std::vector<Parameter*> params,
               const std::function<Var(Tape&)>& graph, double tol = 1e-6) {
  Tape tape;
  const Var loss = graph(tape);
  ASSERT_EQ(tape.value(loss).size(), 1u);
  for (Parameter* p : params) p->ZeroGrad();
  tape.Backward(loss);
  const double eps = 1e-5;
  for (Parameter* p : params) {
    for (std::size_t i = 0; i < p->value.size(); ++i) {
      const double saved = p->value[i];
      p->value[i] = saved + eps;
      Tape t1;
      const double up = t1.value(graph(t1))(0, 0);
      p->value[i] = saved - eps;
      Tape t2;
      const double down = t2.value(graph(t2))(0, 0);
      p->value[i] = saved;
      const double numeric = (up - down) / (2 * eps);
      EXPECT_NEAR(p->grad[i], numeric, tol)
          << p->name << "[" << i << "]";
    }
  }
}

Matrix RandomMatrix(int rows, int cols, util::Rng& rng) {
  Matrix m(rows, cols);
  for (std::size_t i = 0; i < m.size(); ++i) m[i] = rng.NextDouble(-1, 1);
  return m;
}

TEST(Autograd, GradMatMulChain) {
  util::Rng rng(1);
  ParameterStore store;
  Parameter* w = store.CreateXavier("w", 4, 3, rng);
  Parameter* b = store.CreateXavier("b", 4, 1, rng);
  const Matrix x = RandomMatrix(3, 1, rng);
  GradCheck({w, b}, [&](Tape& t) {
    Var out = t.Add(t.MatMul(t.Param(w), t.Leaf(x)), t.Param(b));
    return t.Sum(t.Square(out));
  });
}

TEST(Autograd, GradActivations) {
  util::Rng rng(2);
  ParameterStore store;
  Parameter* w = store.CreateXavier("w", 5, 1, rng);
  GradCheck({w}, [&](Tape& t) {
    Var v = t.Param(w);
    Var out = t.Add(t.Sigmoid(v), t.Add(t.Tanh(v), t.Relu(v)));
    return t.Sum(out);
  }, 1e-5);
}

TEST(Autograd, GradAbsHadamardConcat) {
  util::Rng rng(3);
  ParameterStore store;
  Parameter* a = store.CreateXavier("a", 4, 1, rng);
  Parameter* b = store.CreateXavier("b", 4, 1, rng);
  GradCheck({a, b}, [&](Tape& t) {
    Var va = t.Param(a);
    Var vb = t.Param(b);
    Var cat = t.ConcatRows(t.Abs(t.Sub(va, vb)), t.Hadamard(va, vb));
    return t.Sum(t.Square(cat));
  });
}

TEST(Autograd, GradSoftmaxBce) {
  util::Rng rng(4);
  ParameterStore store;
  Parameter* w = store.CreateXavier("w", 3, 1, rng);
  Matrix target(3, 1);
  target(1, 0) = 1.0;
  GradCheck({w}, [&](Tape& t) {
    return t.BceLoss(t.Softmax(t.Param(w)), target);
  });
}

TEST(Autograd, GradCosineAndMse) {
  util::Rng rng(5);
  ParameterStore store;
  Parameter* a = store.CreateXavier("a", 6, 1, rng);
  Parameter* b = store.CreateXavier("b", 6, 1, rng);
  GradCheck({a, b}, [&](Tape& t) {
    return t.SquaredErrorToConst(t.Cosine(t.Param(a), t.Param(b)), 1.0);
  }, 1e-5);
}

TEST(Autograd, GradMatMulTransA) {
  util::Rng rng(6);
  ParameterStore store;
  Parameter* w = store.CreateXavier("w", 4, 2, rng);
  Parameter* v = store.CreateXavier("v", 4, 1, rng);
  GradCheck({w, v}, [&](Tape& t) {
    return t.Sum(t.Square(t.MatMulTransA(t.Param(w), t.Param(v))));
  });
}

TEST(Autograd, GradEmbeddingRows) {
  util::Rng rng(7);
  ParameterStore store;
  Parameter* table = store.CreateXavier("emb", 5, 3, rng);
  GradCheck({table}, [&](Tape& t) {
    Var r1 = t.EmbeddingRow(table, 1);
    Var r4 = t.EmbeddingRow(table, 4);
    Var r1b = t.EmbeddingRow(table, 1);  // repeated row accumulates
    return t.Sum(t.Square(t.Add(r1, t.Hadamard(r4, r1b))));
  });
}

TEST(Autograd, GradDivSqrtScale) {
  util::Rng rng(8);
  ParameterStore store;
  Parameter* a = store.CreateXavier("a", 3, 1, rng);
  for (std::size_t i = 0; i < a->value.size(); ++i) {
    a->value[i] = 0.5 + std::fabs(a->value[i]);  // keep positive
  }
  Parameter* b = store.CreateXavier("b", 3, 1, rng);
  for (std::size_t i = 0; i < b->value.size(); ++i) {
    b->value[i] = 1.0 + std::fabs(b->value[i]);
  }
  GradCheck({a, b}, [&](Tape& t) {
    Var q = t.DivElem(t.Sqrt(t.Param(a)), t.Param(b));
    return t.Sum(t.Scale(t.AddConst(q, 0.5), 2.0));
  }, 1e-5);
}

TEST(Autograd, BackwardRequiresScalar) {
  Tape tape;
  Var v = tape.Leaf(Matrix(3, 1));
  EXPECT_THROW(tape.Backward(v), std::logic_error);
}

TEST(Optimizer, AdaGradDecreasesQuadratic) {
  ParameterStore store;
  Parameter* w = store.Create("w", 1, 1);
  w->value(0, 0) = 5.0;
  AdaGrad optimizer(0.5);
  double prev = 25.0;
  for (int i = 0; i < 50; ++i) {
    Tape tape;
    Var loss = tape.Square(tape.Param(w));
    tape.Backward(loss);
    optimizer.Step(store.parameters());
    const double now = w->value(0, 0) * w->value(0, 0);
    EXPECT_LE(now, prev + 1e-12);
    prev = now;
  }
  EXPECT_LT(std::fabs(w->value(0, 0)), 1.0);
}

TEST(Optimizer, SgdWithClipping) {
  ParameterStore store;
  Parameter* w = store.Create("w", 1, 1);
  w->value(0, 0) = 100.0;
  Sgd optimizer(0.1, /*clip=*/1.0);
  Tape tape;
  Var loss = tape.Square(tape.Param(w));  // grad = 200
  tape.Backward(loss);
  optimizer.Step(store.parameters());
  // Clipped to 1.0 -> step of 0.1.
  EXPECT_NEAR(w->value(0, 0), 99.9, 1e-9);
}

TEST(ParameterStore, SaveLoadRoundTrip) {
  util::Rng rng(9);
  const std::string path = "/tmp/asteria_params_test.bin";
  ParameterStore store1;
  Parameter* a1 = store1.CreateXavier("a", 3, 4, rng);
  Parameter* b1 = store1.CreateXavier("b", 2, 2, rng);
  ASSERT_TRUE(store1.Save(path));
  ParameterStore store2;
  Parameter* a2 = store2.Create("a", 3, 4);
  Parameter* b2 = store2.Create("b", 2, 2);
  ASSERT_TRUE(store2.Load(path));
  for (std::size_t i = 0; i < a1->value.size(); ++i) {
    EXPECT_DOUBLE_EQ(a2->value[i], a1->value[i]);
  }
  for (std::size_t i = 0; i < b1->value.size(); ++i) {
    EXPECT_DOUBLE_EQ(b2->value[i], b1->value[i]);
  }
  std::remove(path.c_str());
}

TEST(ParameterStore, RejectsDuplicateNames) {
  ParameterStore store;
  store.Create("x", 1, 1);
  EXPECT_THROW(store.Create("x", 2, 2), std::invalid_argument);
}

TEST(ParameterStore, LoadRejectsShapeMismatch) {
  util::Rng rng(10);
  const std::string path = "/tmp/asteria_params_test2.bin";
  ParameterStore store1;
  store1.CreateXavier("a", 3, 4, rng);
  ASSERT_TRUE(store1.Save(path));
  ParameterStore store2;
  store2.Create("a", 4, 4);
  EXPECT_FALSE(store2.Load(path));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace asteria::nn
