// Dataset tests, including the crown-jewel property test: every generated
// program type-checks, terminates in the interpreter, and agrees with the
// VM on all four ISAs (parameterized over seeds).
#include <gtest/gtest.h>

#include "binary/vm.h"
#include "compiler/compile.h"
#include "dataset/corpus.h"
#include "dataset/generator.h"
#include "minic/interp.h"
#include "minic/printer.h"
#include "minic/sema.h"

namespace asteria::dataset {
namespace {

using minic::ArgValue;

TEST(Generator, DeterministicForSeed) {
  GeneratorConfig config;
  util::Rng rng1(42), rng2(42);
  minic::Program p1 = GenerateProgram(config, rng1);
  minic::Program p2 = GenerateProgram(config, rng2);
  EXPECT_EQ(minic::Print(p1), minic::Print(p2));
}

TEST(Generator, DifferentSeedsDiffer) {
  GeneratorConfig config;
  util::Rng rng1(1), rng2(2);
  EXPECT_NE(minic::Print(GenerateProgram(config, rng1)),
            minic::Print(GenerateProgram(config, rng2)));
}

class GeneratorProperty : public ::testing::TestWithParam<int> {};

TEST_P(GeneratorProperty, SemaInterpAndAllIsasAgree) {
  GeneratorConfig config;
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 13);
  minic::Program program = GenerateProgram(config, rng);
  std::string error;
  ASSERT_TRUE(minic::Check(program, &error))
      << error << "\n" << minic::Print(program);

  // Compile for all ISAs up front.
  std::vector<binary::BinModule> modules;
  for (int isa = 0; isa < binary::kNumIsas; ++isa) {
    auto compiled = compiler::CompileProgram(
        program, static_cast<binary::Isa>(isa), "prop");
    ASSERT_TRUE(compiled.ok) << compiled.error;
    modules.push_back(std::move(compiled.module));
  }

  // Call every function with a few random argument sets.
  minic::Interpreter::Options options;
  options.max_steps = 4'000'000;
  minic::Interpreter interp(program, options);
  for (const minic::Function& fn : program.functions()) {
    for (int trial = 0; trial < 2; ++trial) {
      std::vector<ArgValue> args;
      for (const minic::Param& param : fn.params) {
        if (param.is_array) {
          std::vector<std::int64_t> data(8);
          for (auto& x : data) x = rng.NextInt(-100, 100);
          args.push_back(ArgValue::Array(std::move(data)));
        } else {
          args.push_back(ArgValue::Scalar(rng.NextInt(-50, 50)));
        }
      }
      const auto expected = interp.Call(fn.name, args);
      ASSERT_TRUE(expected.ok)
          << fn.name << " trapped: " << expected.trap << "\n"
          << minic::Print(program);
      for (const binary::BinModule& module : modules) {
        binary::Vm::Options vm_options;
        vm_options.max_steps = 16'000'000;
        binary::Vm vm(module, vm_options);
        const auto actual = vm.Call(fn.name, args);
        ASSERT_TRUE(actual.ok)
            << binary::IsaName(module.isa) << "/" << fn.name << ": "
            << actual.trap;
        EXPECT_EQ(actual.value, expected.value)
            << binary::IsaName(module.isa) << "/" << fn.name << "\n"
            << minic::Print(program);
        EXPECT_EQ(actual.arrays, expected.arrays)
            << binary::IsaName(module.isa) << "/" << fn.name;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratorProperty, ::testing::Range(0, 25));

TEST(Corpus, BuildsAllIsasWithGroundTruth) {
  CorpusConfig config;
  config.packages = 4;
  config.seed = 77;
  Corpus corpus = BuildCorpus(config);
  EXPECT_EQ(corpus.binaries_per_isa[0], 4);
  EXPECT_EQ(corpus.binaries_per_isa[3], 4);
  EXPECT_GT(corpus.functions.size(), 20u);
  // Every retained function has a valid preprocessed tree and ACFG.
  for (const CorpusFunction& fn : corpus.functions) {
    EXPECT_GE(fn.ast_size, config.min_ast_size);
    EXPECT_EQ(fn.preprocessed.size(), fn.ast_size);
    EXPECT_GT(fn.acfg.size(), 0);
  }
}

TEST(Corpus, HomologousFunctionsExistAcrossIsas) {
  CorpusConfig config;
  config.packages = 3;
  config.seed = 5;
  Corpus corpus = BuildCorpus(config);
  int cross = 0;
  for (const auto& [key, idx] : corpus.index) {
    if (std::get<2>(key) != 0) continue;
    if (corpus.Find(std::get<0>(key), std::get<1>(key), 2) >= 0) ++cross;
  }
  EXPECT_GT(cross, 0);
}

TEST(Pairs, BalancedAndLabeledCorrectly) {
  CorpusConfig config;
  config.packages = 5;
  config.seed = 11;
  Corpus corpus = BuildCorpus(config);
  util::Rng rng(3);
  auto pairs = MakePairs(corpus, 0, 2, rng);
  ASSERT_GT(pairs.size(), 10u);
  int positives = 0;
  for (const CorpusPair& pair : pairs) {
    const CorpusFunction& a = corpus.functions[static_cast<std::size_t>(pair.a)];
    const CorpusFunction& b = corpus.functions[static_cast<std::size_t>(pair.b)];
    EXPECT_EQ(a.isa, 0);
    EXPECT_EQ(b.isa, 2);
    const bool same = a.package == b.package && a.function == b.function;
    EXPECT_EQ(same, pair.homologous);
    if (pair.homologous) ++positives;
  }
  EXPECT_GT(positives, 0);
  EXPECT_LT(positives, static_cast<int>(pairs.size()));
}

TEST(Pairs, MixedCoversAllCombinations) {
  CorpusConfig config;
  config.packages = 3;
  config.seed = 21;
  Corpus corpus = BuildCorpus(config);
  util::Rng rng(9);
  auto pairs = MakeMixedPairs(corpus, rng);
  std::set<std::pair<int, int>> combos;
  for (const CorpusPair& pair : pairs) {
    combos.insert({corpus.functions[static_cast<std::size_t>(pair.a)].isa,
                   corpus.functions[static_cast<std::size_t>(pair.b)].isa});
  }
  EXPECT_EQ(combos.size(), 6u);
}

TEST(Pairs, SplitIsEightToTwo) {
  std::vector<CorpusPair> pairs(100);
  util::Rng rng(1);
  std::vector<CorpusPair> train, test;
  SplitPairs(pairs, rng, &train, &test);
  EXPECT_EQ(train.size(), 80u);
  EXPECT_EQ(test.size(), 20u);
}

}  // namespace
}  // namespace asteria::dataset
