// Core (Asteria) tests: Tree-LSTM gradient check through a real AST,
// siamese heads, calibration math, preprocessing, and a learnability
// integration test (loss decreases, homologous > non-homologous).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

#include "compiler/compile.h"
#include "core/asteria.h"
#include "core/search_index.h"
#include "decompiler/decompile.h"
#include "minic/parser.h"
#include "minic/sema.h"

namespace asteria::core {
namespace {

ast::Ast SmallTree(int variant) {
  // (block (asg (var) (num)) (return (add (var) (num+variant))))
  ast::Ast tree;
  auto v1 = tree.AddVar("x");
  auto n1 = tree.AddNum(3);
  auto asg = tree.AddNode(ast::NodeKind::kAsg, {v1, n1});
  auto v2 = tree.AddVar("x");
  auto n2 = tree.AddNum(4 + variant);
  ast::NodeId inner;
  if (variant % 2 == 0) {
    inner = tree.AddNode(ast::NodeKind::kAdd, {v2, n2});
  } else {
    inner = tree.AddNode(ast::NodeKind::kMul, {v2, n2});
  }
  auto ret = tree.AddNode(ast::NodeKind::kReturn, {inner});
  auto block = tree.AddNode(ast::NodeKind::kBlock, {asg, ret});
  tree.set_root(block);
  return tree;
}

TEST(Calibration, Equation9And10) {
  EXPECT_DOUBLE_EQ(CalleeSimilarity(3, 3), 1.0);
  EXPECT_DOUBLE_EQ(CalleeSimilarity(3, 5), std::exp(-2.0));
  EXPECT_DOUBLE_EQ(CalleeSimilarity(5, 3), std::exp(-2.0));
  EXPECT_DOUBLE_EQ(CalibratedSimilarity(0.8, 2, 2), 0.8);
  EXPECT_NEAR(CalibratedSimilarity(0.8, 2, 4), 0.8 * std::exp(-2.0), 1e-12);
}

TEST(Preprocess, ProducesBinaryTreeOfSameSize) {
  ast::Ast tree = SmallTree(0);
  ast::BinaryAst binary = AsteriaModel::Preprocess(tree);
  EXPECT_EQ(binary.size(), tree.size());
}

TEST(Siamese, OutputIsProbability) {
  AsteriaConfig config;
  AsteriaModel model(config);
  const auto a = AsteriaModel::Preprocess(SmallTree(0));
  const auto b = AsteriaModel::Preprocess(SmallTree(1));
  const double sim = model.AstSimilarity(a, b);
  EXPECT_GE(sim, 0.0);
  EXPECT_LE(sim, 1.0);
  // Symmetric-ish inputs: similarity of a tree with itself should exceed
  // similarity with a different tree after training; untrained it is just
  // a probability.
  const double self_sim = model.AstSimilarity(a, a);
  EXPECT_GE(self_sim, 0.0);
  EXPECT_LE(self_sim, 1.0);
}

TEST(Siamese, EncodingPathMatchesFullPath) {
  AsteriaConfig config;
  AsteriaModel model(config);
  const auto a = AsteriaModel::Preprocess(SmallTree(0));
  const auto b = AsteriaModel::Preprocess(SmallTree(1));
  const double full = model.AstSimilarity(a, b);
  const double split =
      model.SimilarityFromEncodings(model.Encode(a), model.Encode(b));
  EXPECT_NEAR(full, split, 1e-9);
}

TEST(Siamese, RegressionHeadAlsoWorks) {
  AsteriaConfig config;
  config.siamese.head = SiameseHead::kRegression;
  AsteriaModel model(config);
  const auto a = AsteriaModel::Preprocess(SmallTree(0));
  const auto b = AsteriaModel::Preprocess(SmallTree(1));
  const double sim = model.AstSimilarity(a, b);
  EXPECT_GE(sim, 0.0);
  EXPECT_LE(sim, 1.0);
  const double split =
      model.SimilarityFromEncodings(model.Encode(a), model.Encode(b));
  EXPECT_NEAR(sim, split, 1e-9);
}

TEST(PayloadEmbedding, DistinguishesConstantsWhenEnabled) {
  // Two trees identical except for the numeric constant: the paper's
  // digitalization maps them to the same input; the §VII extension does not.
  ast::Ast t1, t2;
  for (ast::Ast* tree : {&t1, &t2}) {
    const auto v = tree->AddVar("x");
    const auto n = tree->AddNum(tree == &t1 ? 1 : 1'000'000);
    const auto add = tree->AddNode(ast::NodeKind::kAdd, {v, n});
    const auto ret = tree->AddNode(ast::NodeKind::kReturn, {add});
    tree->set_root(tree->AddNode(ast::NodeKind::kBlock, {ret}));
  }
  const auto b1 = AsteriaModel::Preprocess(t1);
  const auto b2 = AsteriaModel::Preprocess(t2);

  AsteriaConfig plain_config;
  AsteriaModel plain(plain_config);
  // Without payloads the encodings are bit-identical.
  const nn::Matrix e1 = plain.Encode(b1);
  const nn::Matrix e2 = plain.Encode(b2);
  EXPECT_EQ(Sub(e1, e2).MaxAbs(), 0.0);

  AsteriaConfig payload_config;
  payload_config.siamese.encoder.embed_payloads = true;
  AsteriaModel with_payloads(payload_config);
  const nn::Matrix p1 = with_payloads.Encode(b1);
  const nn::Matrix p2 = with_payloads.Encode(b2);
  EXPECT_GT(Sub(p1, p2).MaxAbs(), 0.0);
}

TEST(PayloadEmbedding, ModelTrainsAndSaves) {
  AsteriaConfig config;
  config.siamese.encoder.embedding_dim = 8;
  config.siamese.encoder.hidden_dim = 8;
  config.siamese.encoder.embed_payloads = true;
  AsteriaModel model(config);
  const auto a = AsteriaModel::Preprocess(SmallTree(0));
  const auto b = AsteriaModel::Preprocess(SmallTree(2));
  const auto c = AsteriaModel::Preprocess(SmallTree(1));
  double first = 0.0, last = 0.0;
  for (int step = 0; step < 25; ++step) {
    const double loss =
        model.TrainPair(a, b, true) + model.TrainPair(a, c, false);
    if (step == 0) first = loss;
    last = loss;
  }
  EXPECT_LT(last, first);
  const std::string path = "/tmp/asteria_payload_model.bin";
  ASSERT_TRUE(model.Save(path));
  AsteriaModel loaded(config);
  ASSERT_TRUE(loaded.Load(path));
  EXPECT_NEAR(loaded.AstSimilarity(a, b), model.AstSimilarity(a, b), 1e-12);
  std::remove(path.c_str());
}

TEST(TreeLstm, GradientCheckThroughSmallAst) {
  // Full analytic-vs-numeric check of the Tree-LSTM + classification head
  // on a real (tiny) AST. Checks a sample of weights from each parameter.
  util::Rng rng(3);
  nn::ParameterStore store;
  TreeLstmConfig config;
  config.embedding_dim = 4;
  config.hidden_dim = 4;
  TreeLstmEncoder encoder(config, &store, rng);
  const auto tree = AsteriaModel::Preprocess(SmallTree(0));
  const auto tree2 = AsteriaModel::Preprocess(SmallTree(1));
  nn::Parameter* w_out = store.CreateXavier("W", 8, 2, rng);

  nn::Matrix target(2, 1);
  target(1, 0) = 1.0;
  auto graph = [&](nn::Tape& t) {
    nn::Var e1 = encoder.Encode(&t, tree);
    nn::Var e2 = encoder.Encode(&t, tree2);
    nn::Var features =
        t.Sigmoid(t.ConcatRows(t.Abs(t.Sub(e1, e2)), t.Hadamard(e1, e2)));
    nn::Var out = t.Softmax(t.MatMulTransA(t.Param(w_out), features));
    return t.BceLoss(out, target);
  };

  nn::Tape tape;
  nn::Var loss = graph(tape);
  store.ZeroGrads();
  tape.Backward(loss);

  const double eps = 1e-5;
  for (nn::Parameter* p : store.parameters()) {
    // Sample a handful of indices per parameter to keep runtime sane.
    for (std::size_t i = 0; i < p->value.size();
         i += std::max<std::size_t>(1, p->value.size() / 5)) {
      const double saved = p->value[i];
      p->value[i] = saved + eps;
      nn::Tape t1;
      const double up = t1.value(graph(t1))(0, 0);
      p->value[i] = saved - eps;
      nn::Tape t2;
      const double down = t2.value(graph(t2))(0, 0);
      p->value[i] = saved;
      EXPECT_NEAR(p->grad[i], (up - down) / (2 * eps), 1e-5)
          << p->name << "[" << i << "]";
    }
  }
}

TEST(Training, LossDecreasesAndSeparates) {
  // Tiny synthetic task: variants 0/2/4 (add-shaped) vs 1/3/5 (mul-shaped).
  AsteriaConfig config;
  config.siamese.encoder.embedding_dim = 8;
  config.siamese.encoder.hidden_dim = 8;
  AsteriaModel model(config);

  std::vector<FunctionFeature> features;
  for (int v = 0; v < 6; ++v) {
    FunctionFeature f;
    f.name = "f" + std::to_string(v);
    f.tree = AsteriaModel::Preprocess(SmallTree(v));
    features.push_back(std::move(f));
  }
  std::vector<LabeledPair> pairs;
  for (int a = 0; a < 6; ++a) {
    for (int b = 0; b < 6; ++b) {
      if (a == b) continue;
      pairs.push_back({a, b, (a % 2) == (b % 2)});
    }
  }
  util::Rng rng(7);
  double first_loss = 0.0, last_loss = 0.0;
  for (int epoch = 0; epoch < 30; ++epoch) {
    const double loss = model.TrainEpoch(features, pairs, rng);
    if (epoch == 0) first_loss = loss;
    last_loss = loss;
  }
  EXPECT_LT(last_loss, first_loss);
  // Homologous (same parity) pairs should now score higher.
  const double same = model.AstSimilarity(features[0].tree, features[2].tree);
  const double diff = model.AstSimilarity(features[0].tree, features[1].tree);
  EXPECT_GT(same, diff);
}

TEST(SearchIndex, TopKAndThreshold) {
  AsteriaConfig config;
  config.siamese.encoder.embedding_dim = 8;
  config.siamese.encoder.hidden_dim = 8;
  AsteriaModel model(config);

  std::vector<FunctionFeature> corpus;
  for (int v = 0; v < 6; ++v) {
    FunctionFeature f;
    f.name = "fn" + std::to_string(v);
    f.tree = AsteriaModel::Preprocess(SmallTree(v));
    f.callee_count = v % 2;
    corpus.push_back(std::move(f));
  }
  // Teach the model the parity task so ranking is meaningful.
  for (int step = 0; step < 20; ++step) {
    model.TrainPair(corpus[0].tree, corpus[2].tree, true);
    model.TrainPair(corpus[0].tree, corpus[1].tree, false);
  }
  SearchIndex index(model);
  index.AddAll(corpus);
  EXPECT_EQ(index.size(), 6);

  FunctionFeature query;
  query.name = "query";
  query.tree = AsteriaModel::Preprocess(SmallTree(4));  // even variant
  query.callee_count = 0;
  const auto top = index.TopK(query, 3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_GE(top[0].score, top[1].score);
  EXPECT_GE(top[1].score, top[2].score);
  // k larger than the corpus clips cleanly.
  EXPECT_EQ(index.TopK(query, 100).size(), 6u);
  // Threshold filtering agrees with TopK scores.
  const auto above = index.AboveThreshold(query, top[0].score);
  ASSERT_GE(above.size(), 1u);
  // Ties are possible (variants 0/2/4 digitalize identically), so compare
  // scores rather than names.
  EXPECT_DOUBLE_EQ(above[0].score, top[0].score);
  for (const auto& hit : above) EXPECT_GE(hit.score, top[0].score);
}

TEST(Integration, EndToEndPipelineSimilarity) {
  // Compile the same source for two ISAs, decompile, preprocess, score.
  const std::string source = R"(
    int f(int n) {
      int s = 0;
      int i;
      for (i = 0; i < n; i++) { s += i * 3; }
      return s;
    }
    int g(int a[], int n) {
      int i;
      for (i = 0; i < n; i++) { a[i] = a[i] ^ (i << 1); }
      return n;
    }
  )";
  minic::Program program;
  std::string error;
  ASSERT_TRUE(minic::Parse(source, &program, &error)) << error;
  ASSERT_TRUE(minic::Check(program, &error)) << error;
  auto x86 = compiler::CompileProgram(program, binary::Isa::kX86, "m");
  auto ppc = compiler::CompileProgram(program, binary::Isa::kPpc, "m");
  ASSERT_TRUE(x86.ok && ppc.ok);
  auto d_x86 = decompiler::DecompileModule(x86.module);
  auto d_ppc = decompiler::DecompileModule(ppc.module);

  AsteriaConfig config;
  AsteriaModel model(config);
  const auto fx = AsteriaModel::Preprocess(d_x86[0].tree);
  const auto fp = AsteriaModel::Preprocess(d_ppc[0].tree);
  const auto gx = AsteriaModel::Preprocess(d_x86[1].tree);
  // Train briefly on this toy task to make homologous pairs score high.
  for (int step = 0; step < 60; ++step) {
    model.TrainPair(fx, fp, true);
    model.TrainPair(fx, gx, false);
    model.TrainPair(AsteriaModel::Preprocess(d_ppc[1].tree), gx, true);
    model.TrainPair(AsteriaModel::Preprocess(d_ppc[1].tree), fx, false);
  }
  EXPECT_GT(model.AstSimilarity(fx, fp), model.AstSimilarity(fx, gx));
}

}  // namespace
}  // namespace asteria::core
