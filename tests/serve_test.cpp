// asteria-serve protocol/concurrency test net (docs/SERVING.md).
//
// Four contracts are pinned here:
//  1. Protocol conformance: well-formed frames round-trip; every hostile
//     frame — byte-flipped, truncated, oversized-declared-length, wrong
//     version, structurally invalid AST — yields a clean kError reply or a
//     clean close, never a crash, hang, or partial read. The sweep runs
//     under ASan and TSan via scripts/check_sanitize.sh (the on-the-wire
//     sibling of robustness_test's container corruption sweep).
//  2. Concurrency determinism: M client threads against worker pools of
//     1/2/8 return results bitwise identical to direct single-threaded
//     SearchIndex::TopK — batching and dispatch order must never leak into
//     scores or ranking.
//  3. Snapshot swap: queries racing a (failpoint-delayed) reload see either
//     the old index or the new one, bitwise — never a torn mix; after the
//     swap quiesces, everyone sees the new one.
//  4. Lifecycle: shutdown with connections open and requests queued drains
//     cleanly; injected accept/read failures degrade one connection, not
//     the daemon.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <array>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/asteria.h"
#include "core/search_index.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "store/container.h"
#include "util/failpoint.h"
#include "util/metrics.h"
#include "util/request_log.h"
#include "util/rng.h"

namespace asteria {
namespace {

using ::testing::TempDir;

std::string TempPath(const std::string& name) { return TempDir() + name; }

// -- Shared fixtures (the synthetic-AST recipe from robustness_test) --------

core::AsteriaConfig SmallModelConfig(std::uint64_t seed = 1) {
  core::AsteriaConfig config;
  config.siamese.encoder.embedding_dim = 8;
  config.siamese.encoder.hidden_dim = 8;
  config.seed = seed;
  return config;
}

ast::Ast SyntheticTree(int nodes, util::Rng& rng) {
  ast::Ast tree;
  std::vector<ast::NodeId> pool;
  pool.push_back(tree.AddVar("x"));
  while (tree.size() < nodes) {
    const auto kind = static_cast<ast::NodeKind>(
        rng.NextBounded(static_cast<std::uint64_t>(ast::kNumNodeKinds)));
    const int arity = static_cast<int>(rng.NextBounded(3));
    std::vector<ast::NodeId> children;
    for (int i = 0; i < arity && !pool.empty(); ++i) {
      children.push_back(pool.back());
      pool.pop_back();
    }
    pool.push_back(tree.AddNode(kind, std::move(children)));
  }
  tree.set_root(tree.AddNode(ast::NodeKind::kBlock, pool));
  return tree;
}

std::vector<core::FunctionFeature> SyntheticFeatures(int count,
                                                     std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<core::FunctionFeature> features;
  features.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    core::FunctionFeature feature;
    feature.name = "fn" + std::to_string(i);
    feature.tree = core::AsteriaModel::Preprocess(SyntheticTree(8, rng));
    feature.callee_count = static_cast<int>(rng.NextBounded(6));
    features.push_back(std::move(feature));
  }
  return features;
}

void ExpectSameHits(const std::vector<core::SearchHit>& got,
                    const std::vector<core::SearchHit>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].index, want[i].index) << "rank " << i;
    EXPECT_EQ(got[i].name, want[i].name) << "rank " << i;
    EXPECT_EQ(got[i].score, want[i].score) << "rank " << i;  // bitwise
  }
}

bool SameHits(const std::vector<core::SearchHit>& a,
              const std::vector<core::SearchHit>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].index != b[i].index || a[i].name != b[i].name ||
        a[i].score != b[i].score) {
      return false;
    }
  }
  return true;
}

// In-process daemon around a snapshot file: Start() + Run() on a thread,
// stopped and joined by the destructor.
class Harness {
 public:
  // `tweak` mutates the assembled config before Start() — how the overload
  // tests dial in queue_high_water / io_timeout_ms / max_conns /
  // drain_timeout_ms without a constructor parameter per knob.
  Harness(const core::AsteriaModel& model, const std::string& index_path,
          const std::string& socket_path, int workers, int batch_max = 8,
          std::function<void(serve::ServerConfig*)> tweak = nullptr)
      : server_(model, MakeConfig(index_path, socket_path, workers, batch_max,
                                  std::move(tweak))) {
    std::string error;
    started_ = server_.Start(&error);
    EXPECT_TRUE(started_) << error;
    if (started_) {
      thread_ = std::thread([this] { server_.Run(); });
    }
  }

  ~Harness() { Stop(); }

  void Stop() {
    if (thread_.joinable()) {
      server_.RequestStop();
      thread_.join();
    }
  }

  bool started() const { return started_; }
  serve::Server& server() { return server_; }

 private:
  static serve::ServerConfig MakeConfig(
      const std::string& index_path, const std::string& socket_path,
      int workers, int batch_max,
      std::function<void(serve::ServerConfig*)> tweak) {
    serve::ServerConfig config;
    config.socket_path = socket_path;
    config.index_path = index_path;
    config.workers = workers;
    config.batch_max = batch_max;
    config.queue_capacity = 64;
    if (tweak) tweak(&config);
    return config;
  }

  serve::Server server_;
  std::thread thread_;
  bool started_ = false;
};

class ServeTest : public ::testing::Test {
 protected:
  void SetUp() override { util::ClearFailpoints(); }
  void TearDown() override { util::ClearFailpoints(); }
};

void Arm(const std::string& spec) {
  std::string error;
  ASSERT_TRUE(util::ConfigureFailpoints(spec, &error)) << error;
}

// Builds an index over `features`, saves it, and returns the entry count.
int SaveIndexSnapshot(const core::AsteriaModel& model,
                      const std::vector<core::FunctionFeature>& features,
                      const std::string& path) {
  core::SearchIndex index(model);
  index.AddAll(features);
  std::string error;
  EXPECT_TRUE(index.Save(path, &error)) << error;
  return index.size();
}

// -- Raw-socket helpers for the hostile sweep -------------------------------

int ConnectRaw(const std::string& socket_path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  timeval timeout{};  // a wedged daemon must fail the test, not hang it
  timeout.tv_sec = 10;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

void PutLe32(std::uint32_t v, std::vector<std::uint8_t>* out) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void PutLe64(std::uint64_t v, std::vector<std::uint8_t>* out) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

// The byte-exact frame layout from docs/SERVING.md, hard-coded on purpose:
// this is the conformance side of the spec, independent of WriteFrame. A
// v2 header carries the trailing deadline field, a v3 header deadline +
// trace id; any other version value gets the bare 24-byte prefix (v1's
// layout, also what makes bad-version frames byte-plausible).
std::vector<std::uint8_t> BuildFrameBytes(std::uint32_t magic,
                                          std::uint32_t version,
                                          std::uint32_t type,
                                          const store::ChunkBuilder& payload,
                                          std::uint64_t deadline_ms = 0,
                                          std::uint64_t trace_id = 0) {
  std::vector<std::uint8_t> frame;
  PutLe32(magic, &frame);
  PutLe32(version, &frame);
  PutLe32(type, &frame);
  PutLe32(store::Crc32(payload.bytes().data(), payload.size()), &frame);
  PutLe64(payload.size(), &frame);
  if (version == serve::kProtocolVersion ||
      version == serve::kProtocolVersionV2) {
    PutLe64(deadline_ms, &frame);
  }
  if (version == serve::kProtocolVersion) PutLe64(trace_id, &frame);
  frame.insert(frame.end(), payload.bytes().begin(), payload.bytes().end());
  return frame;
}

std::vector<std::uint8_t> BuildTopKFrameBytes(
    const core::FunctionFeature& query, int k, std::uint64_t id = 7,
    std::uint64_t deadline_ms = 0, std::uint64_t trace_id = 0) {
  store::ChunkBuilder payload;
  serve::PutQuery(id, query, k, 0.0, serve::FrameType::kTopK, &payload);
  return BuildFrameBytes(serve::kServeMagic, serve::kProtocolVersion,
                         static_cast<std::uint32_t>(serve::FrameType::kTopK),
                         payload, deadline_ms, trace_id);
}

bool SendAll(int fd, const std::vector<std::uint8_t>& bytes) {
  std::size_t done = 0;
  while (done < bytes.size()) {
    const ssize_t n =
        ::send(fd, bytes.data() + done, bytes.size() - done, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    done += static_cast<std::size_t>(n);
  }
  return true;
}

// What a hostile frame earned: a reply frame, a clean close, or a hang
// (recv timeout) — the last one fails the test.
enum class Outcome { kReply, kClosed, kHang };

Outcome AwaitOutcome(int fd) {
  // Half-close our side so a server draining to EOF sees it.
  ::shutdown(fd, SHUT_WR);
  std::uint8_t buffer[512];
  for (;;) {
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n > 0) return Outcome::kReply;
    if (n == 0) return Outcome::kClosed;
    if (errno == EINTR) continue;
    return Outcome::kHang;
  }
}

// -- Metric probes for the overload tests -----------------------------------

std::uint64_t CounterValueOf(const util::MetricsSnapshot& snapshot,
                             const std::string& name) {
  for (const util::CounterValue& counter : snapshot.counters) {
    if (counter.name == name) return counter.value;
  }
  return 0;
}

std::uint64_t SpanCountOf(const util::MetricsSnapshot& snapshot,
                          const std::string& stage) {
  for (const util::StageTiming& span : snapshot.spans) {
    if (span.stage == stage) return span.count;
  }
  return 0;
}

// Polls SnapshotMetrics until `name` has grown by at least `delta` over
// `baseline`, failing the test after ~5s. Used where the observable effect
// (a cancelled query) produces no reply frame to wait on.
void AwaitCounterDelta(const std::string& name, std::uint64_t baseline,
                       std::uint64_t delta) {
  for (int i = 0; i < 500; ++i) {
    if (CounterValueOf(util::SnapshotMetrics(), name) >= baseline + delta) {
      return;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  FAIL() << name << " never reached +" << delta;
}

// Sends `bytes` as one hostile connection and requires a reply or a clean
// close. Then proves the daemon survived: a fresh, well-formed query on a
// fresh connection still answers correctly.
void ExpectSurvives(const std::string& socket_path,
                    const std::vector<std::uint8_t>& bytes,
                    const std::string& what) {
  const int fd = ConnectRaw(socket_path);
  ASSERT_GE(fd, 0) << what << ": connect failed";
  // The server may hang up mid-send (e.g. after rejecting an oversized
  // declared length); a send failure is fine, a hang is not.
  SendAll(fd, bytes);
  EXPECT_NE(AwaitOutcome(fd), Outcome::kHang) << what << ": daemon hung";
  ::close(fd);
}

// ---------------------------------------------------------------------------
// Core batched-scoring entry point (no daemon involved)

TEST_F(ServeTest, TopKBatchBitwiseMatchesSequentialTopK) {
  const core::AsteriaModel model(SmallModelConfig());
  const std::vector<core::FunctionFeature> corpus = SyntheticFeatures(40, 11);
  const std::vector<core::FunctionFeature> queries = SyntheticFeatures(9, 99);
  for (const int threads : {1, 2, 8}) {
    core::SearchIndex index(model, threads);
    index.AddAll(corpus);
    std::vector<const core::FunctionFeature*> query_ptrs;
    std::vector<int> ks;
    for (std::size_t q = 0; q < queries.size(); ++q) {
      query_ptrs.push_back(&queries[q]);
      ks.push_back(1 + static_cast<int>(q % 7));  // mixed per-query k
    }
    const auto batched = index.TopKBatch(query_ptrs, ks);
    ASSERT_EQ(batched.size(), queries.size());
    for (std::size_t q = 0; q < queries.size(); ++q) {
      ExpectSameHits(batched[q], index.TopK(queries[q], ks[q]));
    }
  }
}

TEST_F(ServeTest, TopKBatchHandlesEmptyAndZeroK) {
  const core::AsteriaModel model(SmallModelConfig());
  core::SearchIndex index(model);
  index.AddAll(SyntheticFeatures(5, 3));
  EXPECT_TRUE(index.TopKBatch({}, {}).empty());
  const std::vector<core::FunctionFeature> queries = SyntheticFeatures(1, 4);
  const auto results = index.TopKBatch({&queries[0]}, {0});
  ASSERT_EQ(results.size(), 1u);
  EXPECT_TRUE(results[0].empty());
}

// ---------------------------------------------------------------------------
// Round trips

TEST_F(ServeTest, PingQueryAndShutdownRoundTrip) {
  const core::AsteriaModel model(SmallModelConfig());
  const auto features = SyntheticFeatures(20, 5);
  const std::string index_path = TempPath("serve_rt.idx");
  SaveIndexSnapshot(model, features, index_path);
  const std::string socket_path = TempPath("serve_rt.sock");
  Harness harness(model, index_path, socket_path, /*workers=*/2);
  ASSERT_TRUE(harness.started());

  core::SearchIndex reference(model);
  std::string error;
  ASSERT_TRUE(reference.Load(index_path, &error)) << error;

  serve::Client client;
  ASSERT_TRUE(client.Connect(socket_path, &error)) << error;
  EXPECT_TRUE(client.Ping(&error)) << error;

  const auto queries = SyntheticFeatures(3, 77);
  std::vector<core::SearchHit> hits;
  for (const core::FunctionFeature& query : queries) {
    ASSERT_TRUE(client.TopK(query, 5, &hits, &error)) << error;
    ExpectSameHits(hits, reference.TopK(query, 5));
    ASSERT_TRUE(client.AboveThreshold(query, 0.5, &hits, &error)) << error;
    ExpectSameHits(hits, reference.AboveThreshold(query, 0.5));
  }
  // Shutdown via control frame: Run() must return without RequestStop().
  EXPECT_TRUE(client.Shutdown(&error)) << error;
}

TEST_F(ServeTest, SemanticErrorsKeepTheConnectionUsable) {
  const core::AsteriaModel model(SmallModelConfig());
  const auto features = SyntheticFeatures(10, 6);
  const std::string index_path = TempPath("serve_sem.idx");
  SaveIndexSnapshot(model, features, index_path);
  const std::string socket_path = TempPath("serve_sem.sock");
  Harness harness(model, index_path, socket_path, 1);
  ASSERT_TRUE(harness.started());

  serve::Client client;
  std::string error;
  ASSERT_TRUE(client.Connect(socket_path, &error)) << error;
  const auto queries = SyntheticFeatures(1, 8);
  std::vector<core::SearchHit> hits;

  // k < 1 and an empty AST are semantic faults: error reply, same socket.
  EXPECT_FALSE(client.TopK(queries[0], 0, &hits, &error));
  EXPECT_NE(error.find("k must be >= 1"), std::string::npos) << error;
  core::FunctionFeature empty;
  empty.name = "empty";
  EXPECT_FALSE(client.TopK(empty, 3, &hits, &error));
  EXPECT_NE(error.find("empty"), std::string::npos) << error;

  ASSERT_TRUE(client.TopK(queries[0], 3, &hits, &error)) << error;
  EXPECT_EQ(hits.size(), 3u);
}

// ---------------------------------------------------------------------------
// Concurrency determinism

TEST_F(ServeTest, ConcurrentClientsMatchDirectTopKAtEveryWorkerCount) {
  const core::AsteriaModel model(SmallModelConfig());
  const auto features = SyntheticFeatures(30, 21);
  const std::string index_path = TempPath("serve_det.idx");
  SaveIndexSnapshot(model, features, index_path);

  core::SearchIndex reference(model);  // single-threaded direct scoring
  std::string error;
  ASSERT_TRUE(reference.Load(index_path, &error)) << error;
  const auto queries = SyntheticFeatures(12, 123);
  constexpr int kTop = 7;
  std::vector<std::vector<core::SearchHit>> expected;
  for (const core::FunctionFeature& query : queries) {
    expected.push_back(reference.TopK(query, kTop));
  }

  for (const int workers : {1, 2, 8}) {
    const std::string socket_path =
        TempPath("serve_det" + std::to_string(workers) + ".sock");
    Harness harness(model, index_path, socket_path, workers, /*batch_max=*/4);
    ASSERT_TRUE(harness.started());
    constexpr int kClientThreads = 4;
    std::atomic<int> failures{0};
    std::vector<std::thread> clients;
    for (int t = 0; t < kClientThreads; ++t) {
      clients.emplace_back([&, t] {
        serve::Client client;
        std::string client_error;
        if (!client.Connect(socket_path, &client_error)) {
          ++failures;
          return;
        }
        // Interleave: each thread walks the query set from its own offset.
        for (std::size_t step = 0; step < queries.size(); ++step) {
          const std::size_t q =
              (static_cast<std::size_t>(t) + step) % queries.size();
          std::vector<core::SearchHit> hits;
          if (!client.TopK(queries[q], kTop, &hits, &client_error) ||
              !SameHits(hits, expected[q])) {
            ++failures;
            return;
          }
        }
      });
    }
    for (std::thread& thread : clients) thread.join();
    EXPECT_EQ(failures.load(), 0)
        << "non-identical results at workers=" << workers;
  }
}

// ---------------------------------------------------------------------------
// Snapshot swap

TEST_F(ServeTest, SwapUnderLoadServesOldOrNewNeverTorn) {
  const core::AsteriaModel model(SmallModelConfig());
  const auto features_v1 = SyntheticFeatures(25, 31);
  auto features_v2 = SyntheticFeatures(25, 31);
  const auto extra = SyntheticFeatures(10, 32);
  features_v2.insert(features_v2.end(), extra.begin(), extra.end());

  const std::string index_path = TempPath("serve_swap.idx");
  SaveIndexSnapshot(model, features_v1, index_path);
  const std::string socket_path = TempPath("serve_swap.sock");
  Harness harness(model, index_path, socket_path, /*workers=*/2,
                  /*batch_max=*/4);
  ASSERT_TRUE(harness.started());

  core::SearchIndex ref_old(model), ref_new(model);
  std::string error;
  ASSERT_TRUE(ref_old.Load(index_path, &error)) << error;
  // Overwrite the serving snapshot with v2; the daemon still serves v1
  // until a reload publishes the new file.
  SaveIndexSnapshot(model, features_v2, index_path);
  ASSERT_TRUE(ref_new.Load(index_path, &error)) << error;

  const auto queries = SyntheticFeatures(6, 41);
  constexpr int kTop = 5;
  std::vector<std::vector<core::SearchHit>> expect_old, expect_new;
  for (const core::FunctionFeature& query : queries) {
    expect_old.push_back(ref_old.TopK(query, kTop));
    expect_new.push_back(ref_new.TopK(query, kTop));
    // The two references must differ, or "old or new" proves nothing.
    ASSERT_FALSE(SameHits(expect_old.back(), expect_new.back()));
  }

  // Delay every swap publish by 50ms (serve.swap failpoint) so in-flight
  // queries genuinely race it.
  Arm("serve.swap=always");
  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::atomic<int> checked{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < 4; ++t) {
    clients.emplace_back([&, t] {
      serve::Client client;
      std::string client_error;
      if (!client.Connect(socket_path, &client_error)) {
        ++failures;
        return;
      }
      std::size_t q = static_cast<std::size_t>(t);
      while (!stop.load(std::memory_order_acquire)) {
        q = (q + 1) % queries.size();
        std::vector<core::SearchHit> hits;
        if (!client.TopK(queries[q], kTop, &hits, &client_error)) {
          ++failures;
          return;
        }
        if (!SameHits(hits, expect_old[q]) && !SameHits(hits, expect_new[q])) {
          ++failures;  // a torn snapshot would land here
          return;
        }
        ++checked;
      }
    });
  }
  serve::Client control;
  ASSERT_TRUE(control.Connect(socket_path, &error)) << error;
  for (int reload = 0; reload < 3; ++reload) {
    ASSERT_TRUE(control.Reload(&error)) << error;
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& thread : clients) thread.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GT(checked.load(), 0);

  // Quiesced: every post-reload query must now see v2 exactly.
  std::vector<core::SearchHit> hits;
  for (std::size_t q = 0; q < queries.size(); ++q) {
    ASSERT_TRUE(control.TopK(queries[q], kTop, &hits, &error)) << error;
    ExpectSameHits(hits, expect_new[q]);
  }
}

TEST_F(ServeTest, ReloadFailureKeepsServingTheOldSnapshot) {
  const core::AsteriaModel model(SmallModelConfig());
  const auto features = SyntheticFeatures(12, 51);
  const std::string index_path = TempPath("serve_rfail.idx");
  SaveIndexSnapshot(model, features, index_path);
  const std::string socket_path = TempPath("serve_rfail.sock");
  Harness harness(model, index_path, socket_path, 1);
  ASSERT_TRUE(harness.started());

  core::SearchIndex reference(model);
  std::string error;
  ASSERT_TRUE(reference.Load(index_path, &error)) << error;

  // Corrupt the snapshot file on disk; reload must fail loudly and leave
  // the in-memory snapshot serving.
  {
    std::ofstream out(index_path, std::ios::binary | std::ios::trunc);
    out << "not a container";
  }
  serve::Client client;
  ASSERT_TRUE(client.Connect(socket_path, &error)) << error;
  EXPECT_FALSE(client.Reload(&error));
  EXPECT_NE(error.find("daemon error"), std::string::npos) << error;

  const auto queries = SyntheticFeatures(2, 52);
  std::vector<core::SearchHit> hits;
  ASSERT_TRUE(client.TopK(queries[0], 4, &hits, &error)) << error;
  ExpectSameHits(hits, reference.TopK(queries[0], 4));
}

// ---------------------------------------------------------------------------
// Hostile input sweep

class HostileTest : public ServeTest {
 protected:
  void StartDaemon(const std::string& tag) {
    model_ = std::make_unique<core::AsteriaModel>(SmallModelConfig());
    features_ = SyntheticFeatures(15, 61);
    index_path_ = TempPath("serve_hostile_" + tag + ".idx");
    SaveIndexSnapshot(*model_, features_, index_path_);
    socket_path_ = TempPath("serve_hostile_" + tag + ".sock");
    harness_ = std::make_unique<Harness>(*model_, index_path_, socket_path_,
                                         /*workers=*/2);
    ASSERT_TRUE(harness_->started());
    reference_ = std::make_unique<core::SearchIndex>(*model_);
    std::string error;
    ASSERT_TRUE(reference_->Load(index_path_, &error)) << error;
    queries_ = SyntheticFeatures(2, 62);
  }

  // The daemon must still answer a well-formed query correctly.
  void ExpectStillServing() {
    serve::Client client;
    std::string error;
    ASSERT_TRUE(client.Connect(socket_path_, &error)) << error;
    std::vector<core::SearchHit> hits;
    ASSERT_TRUE(client.TopK(queries_[0], 3, &hits, &error)) << error;
    ExpectSameHits(hits, reference_->TopK(queries_[0], 3));
  }

  std::unique_ptr<core::AsteriaModel> model_;
  std::vector<core::FunctionFeature> features_;
  std::vector<core::FunctionFeature> queries_;
  std::string index_path_;
  std::string socket_path_;
  std::unique_ptr<Harness> harness_;
  std::unique_ptr<core::SearchIndex> reference_;
};

TEST_F(HostileTest, MalformedHeadersAreRejectedCleanly) {
  StartDaemon("hdr");
  store::ChunkBuilder ping;
  serve::PutControl(1, &ping);

  // Wrong magic.
  ExpectSurvives(socket_path_,
                 BuildFrameBytes(0xdeadbeef, serve::kProtocolVersion,
                                 static_cast<std::uint32_t>(
                                     serve::FrameType::kPing),
                                 ping),
                 "wrong magic");
  // Wrong protocol version.
  ExpectSurvives(socket_path_,
                 BuildFrameBytes(serve::kServeMagic, 99,
                                 static_cast<std::uint32_t>(
                                     serve::FrameType::kPing),
                                 ping),
                 "wrong version");
  // Unknown frame type (well-formed otherwise).
  ExpectSurvives(socket_path_,
                 BuildFrameBytes(serve::kServeMagic, serve::kProtocolVersion,
                                 12345, ping),
                 "unknown type");
  // Oversized declared payload: must be refused before any allocation.
  {
    std::vector<std::uint8_t> frame;
    PutLe32(serve::kServeMagic, &frame);
    PutLe32(serve::kProtocolVersion, &frame);
    PutLe32(static_cast<std::uint32_t>(serve::FrameType::kTopK), &frame);
    PutLe32(0, &frame);
    PutLe64(serve::kMaxFramePayload + 1, &frame);
    ExpectSurvives(socket_path_, frame, "oversized declared length");
  }
  ExpectStillServing();
}

TEST_F(HostileTest, TruncationsAreRejectedCleanly) {
  StartDaemon("trunc");
  const std::vector<std::uint8_t> frame = BuildTopKFrameBytes(queries_[0], 3);
  // Every prefix class: mid-header, exact header (payload missing), and
  // mid-payload. AwaitOutcome half-closes, so the server sees EOF where the
  // declared bytes should be.
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{1}, std::size_t{10},
        std::size_t{serve::kFrameHeaderSize},
        std::size_t{serve::kFrameHeaderSize + 5}, frame.size() - 1}) {
    ASSERT_LT(keep, frame.size());
    const std::vector<std::uint8_t> truncated(frame.begin(),
                                              frame.begin() + keep);
    ExpectSurvives(socket_path_, truncated,
                   "truncated at byte " + std::to_string(keep));
  }
  ExpectStillServing();
}

TEST_F(HostileTest, ByteFlipSweepNeverCrashesOrHangs) {
  StartDaemon("flip");
  const std::vector<std::uint8_t> frame = BuildTopKFrameBytes(queries_[1], 4);
  // Flip one bit in every byte of the frame — header fields, payload
  // scalars, AST bytes — and require a reply or clean close each time.
  // (CRC coverage means any payload flip must be caught; header flips are
  // caught field by field.)
  for (std::size_t i = 0; i < frame.size(); ++i) {
    std::vector<std::uint8_t> corrupted = frame;
    corrupted[i] ^= 0x20;
    ExpectSurvives(socket_path_, corrupted,
                   "bit flip at byte " + std::to_string(i));
  }
  ExpectStillServing();
}

TEST_F(HostileTest, StructurallyInvalidAstsAreRejected) {
  StartDaemon("ast");
  // Hand-build query payloads with valid framing + CRC but broken trees;
  // these must die in validation with an error reply, and the connection
  // must stay usable (the stream is still aligned).
  struct Case {
    std::string name;
    std::uint32_t count;
    std::int32_t root;
    std::vector<std::array<std::int32_t, 4>> nodes;  // label,payload,left,right
  };
  const std::vector<Case> cases = {
      {"root out of range", 2, 5, {{1, 0, -1, -1}, {1, 0, -1, -1}}},
      {"child out of range", 2, 0, {{1, 0, 7, -1}, {1, 0, -1, -1}}},
      {"negative child", 2, 0, {{1, 0, -3, -1}, {1, 0, -1, -1}}},
      {"two parents", 3, 0, {{1, 0, 1, 2}, {1, 0, 2, -1}, {1, 0, -1, -1}}},
      {"root is a child", 2, 0, {{1, 0, 1, -1}, {1, 0, 0, -1}}},
      {"self cycle", 1, 0, {{1, 0, 0, -1}}},
  };
  for (const Case& test_case : cases) {
    const int fd = ConnectRaw(socket_path_);
    ASSERT_GE(fd, 0);
    store::ChunkBuilder payload;
    payload.PutU64(3);
    payload.PutString("hostile");
    payload.PutI32(0);  // callee_count
    payload.PutI32(5);  // k
    payload.PutU32(test_case.count);
    payload.PutI32(test_case.root);
    for (const auto& node : test_case.nodes) {
      for (const std::int32_t field : node) payload.PutI32(field);
    }
    ASSERT_TRUE(SendAll(
        fd, BuildFrameBytes(serve::kServeMagic, serve::kProtocolVersion,
                            static_cast<std::uint32_t>(serve::FrameType::kTopK),
                            payload)))
        << test_case.name;
    // Expect a kError reply frame on the still-open connection.
    serve::FrameType type = serve::FrameType::kPing;
    std::vector<std::uint8_t> reply;
    std::string error;
    ASSERT_EQ(serve::ReadFrame(fd, &type, &reply, &error), serve::ReadStatus::kFrame)
        << test_case.name << ": " << error;
    EXPECT_EQ(type, serve::FrameType::kError) << test_case.name;
    std::uint64_t id = 0;
    std::string message;
    ASSERT_TRUE(serve::GetError(reply, &id, &message, &error));
    EXPECT_EQ(id, 3u) << test_case.name;
    ::close(fd);
  }
  // A declared node count bigger than the payload must also die cleanly.
  {
    store::ChunkBuilder payload;
    payload.PutU64(4);
    payload.PutString("hostile");
    payload.PutI32(0);
    payload.PutI32(5);
    payload.PutU32(1000000);  // declares 16MB of nodes, sends none
    payload.PutI32(0);
    ExpectSurvives(
        socket_path_,
        BuildFrameBytes(serve::kServeMagic, serve::kProtocolVersion,
                        static_cast<std::uint32_t>(serve::FrameType::kTopK),
                        payload),
        "overdeclared node count");
  }
  // Trailing garbage after a valid query payload.
  {
    store::ChunkBuilder payload;
    serve::PutQuery(5, queries_[0], 3, 0.0, serve::FrameType::kTopK, &payload);
    payload.PutU32(0xabcdef01);
    ExpectSurvives(
        socket_path_,
        BuildFrameBytes(serve::kServeMagic, serve::kProtocolVersion,
                        static_cast<std::uint32_t>(serve::FrameType::kTopK),
                        payload),
        "trailing bytes");
  }
  ExpectStillServing();
}

// ---------------------------------------------------------------------------
// Injected faults

TEST_F(ServeTest, ReadFailpointKillsOneConnectionNotTheDaemon) {
  const core::AsteriaModel model(SmallModelConfig());
  const auto features = SyntheticFeatures(10, 71);
  const std::string index_path = TempPath("serve_fpread.idx");
  SaveIndexSnapshot(model, features, index_path);
  const std::string socket_path = TempPath("serve_fpread.sock");
  Harness harness(model, index_path, socket_path, 1);
  ASSERT_TRUE(harness.started());

  Arm("serve.read=once");
  serve::Client doomed;
  std::string error;
  ASSERT_TRUE(doomed.Connect(socket_path, &error)) << error;
  EXPECT_FALSE(doomed.Ping(&error));  // injected read failure on the server

  serve::Client healthy;
  ASSERT_TRUE(healthy.Connect(socket_path, &error)) << error;
  EXPECT_TRUE(healthy.Ping(&error)) << error;
}

TEST_F(ServeTest, AcceptFailpointDropsOneConnectionNotTheDaemon) {
  const core::AsteriaModel model(SmallModelConfig());
  const auto features = SyntheticFeatures(10, 81);
  const std::string index_path = TempPath("serve_fpacc.idx");
  SaveIndexSnapshot(model, features, index_path);
  const std::string socket_path = TempPath("serve_fpacc.sock");
  Harness harness(model, index_path, socket_path, 1);
  ASSERT_TRUE(harness.started());

  Arm("serve.accept=once");
  serve::Client dropped;
  std::string error;
  // connect() itself succeeds against the listen backlog; the daemon then
  // closes the accepted fd, so the first round trip fails.
  if (dropped.Connect(socket_path, &error)) {
    EXPECT_FALSE(dropped.Ping(&error));
  }
  serve::Client healthy;
  ASSERT_TRUE(healthy.Connect(socket_path, &error)) << error;
  EXPECT_TRUE(healthy.Ping(&error)) << error;
}

TEST_F(ServeTest, StartFailsCleanlyOnMissingOrCorruptSnapshot) {
  const core::AsteriaModel model(SmallModelConfig());
  serve::ServerConfig config;
  config.socket_path = TempPath("serve_nostart.sock");
  config.index_path = TempPath("serve_nostart_missing.idx");
  {
    serve::Server server(model, config);
    std::string error;
    EXPECT_FALSE(server.Start(&error));
    EXPECT_FALSE(error.empty());
  }
  // Fingerprint mismatch: snapshot built by different weights.
  const core::AsteriaModel other(SmallModelConfig(/*seed=*/999));
  const std::string index_path = TempPath("serve_nostart_mismatch.idx");
  SaveIndexSnapshot(other, SyntheticFeatures(4, 91), index_path);
  config.index_path = index_path;
  serve::Server server(model, config);
  std::string error;
  EXPECT_FALSE(server.Start(&error));
  EXPECT_NE(error.find("fingerprint"), std::string::npos) << error;
}

TEST_F(ServeTest, ShutdownDrainsQueuedRequests) {
  const core::AsteriaModel model(SmallModelConfig());
  const auto features = SyntheticFeatures(20, 95);
  const std::string index_path = TempPath("serve_drain.idx");
  SaveIndexSnapshot(model, features, index_path);
  const std::string socket_path = TempPath("serve_drain.sock");
  auto harness = std::make_unique<Harness>(model, index_path, socket_path,
                                           /*workers=*/2);
  ASSERT_TRUE(harness->started());

  // Pipeline several queries raw (no reply waits), then a shutdown frame on
  // another connection; every pipelined query must still get its reply.
  const int fd = ConnectRaw(socket_path);
  ASSERT_GE(fd, 0);
  const auto queries = SyntheticFeatures(4, 96);
  for (std::uint64_t i = 0; i < queries.size(); ++i) {
    ASSERT_TRUE(
        SendAll(fd, BuildTopKFrameBytes(queries[i], 3, /*id=*/100 + i)));
  }
  serve::Client control;
  std::string error;
  ASSERT_TRUE(control.Connect(socket_path, &error)) << error;
  ASSERT_TRUE(control.Shutdown(&error)) << error;

  std::vector<bool> answered(queries.size(), false);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    serve::FrameType type = serve::FrameType::kPing;
    std::vector<std::uint8_t> payload;
    ASSERT_EQ(serve::ReadFrame(fd, &type, &payload, &error),
              serve::ReadStatus::kFrame)
        << error;
    ASSERT_EQ(type, serve::FrameType::kHits);
    std::uint64_t id = 0;
    std::vector<core::SearchHit> hits;
    ASSERT_TRUE(serve::GetHits(payload, &id, &hits, &error)) << error;
    ASSERT_GE(id, 100u);
    ASSERT_LT(id - 100, answered.size());
    EXPECT_FALSE(answered[id - 100]);
    answered[id - 100] = true;
    EXPECT_EQ(hits.size(), 3u);
  }
  ::close(fd);
  harness.reset();  // joins Run(); must not deadlock with queued work
}

// ---------------------------------------------------------------------------
// Overload & request lifecycle (docs/ROBUSTNESS.md "Overload & request
// lifecycle"): admission control, deadlines, cancellation, io timeouts,
// drain windows, and the retrying client. Chaos pacing comes from the
// serve.stall_worker failpoint (250 ms at every DispatchBatch entry), which
// holds workers still long enough for queues to fill, deadlines to lapse,
// and cancels to land — deterministically, not by racing the scheduler.

TEST_F(ServeTest, OverloadShedsWithKOverloadedAtEveryWorkerCount) {
  const core::AsteriaModel model(SmallModelConfig());
  const auto features = SyntheticFeatures(20, 141);
  const std::string index_path = TempPath("serve_shed.idx");
  SaveIndexSnapshot(model, features, index_path);
  core::SearchIndex reference(model);
  std::string error;
  ASSERT_TRUE(reference.Load(index_path, &error)) << error;
  const auto queries = SyntheticFeatures(40, 142);
  std::vector<std::vector<core::SearchHit>> expected;
  for (const core::FunctionFeature& query : queries) {
    expected.push_back(reference.TopK(query, 3));
  }

  for (const int workers : {1, 2, 8}) {
    Arm("serve.stall_worker=always");
    const std::string socket_path =
        TempPath("serve_shed" + std::to_string(workers) + ".sock");
    // batch_max=2 bounds what stalled workers can absorb: at most
    // workers*2 in flight + 4 queued, so a 40-query burst must shed.
    Harness harness(model, index_path, socket_path, workers, /*batch_max=*/2,
                    [](serve::ServerConfig* config) {
                      config->queue_high_water = 4;
                    });
    ASSERT_TRUE(harness.started());
    const auto before = util::SnapshotMetrics();

    const int fd = ConnectRaw(socket_path);
    ASSERT_GE(fd, 0);
    for (std::uint64_t i = 0; i < queries.size(); ++i) {
      ASSERT_TRUE(SendAll(fd, BuildTopKFrameBytes(queries[i], 3, 300 + i)));
    }
    // Exactly one reply per query — kHits for the admitted, kOverloaded for
    // the shed — and every answered query is bitwise-identical to direct
    // TopK. Nothing is silently dropped, nothing is wrong-but-fast.
    int answered = 0;
    int shed = 0;
    for (std::size_t i = 0; i < queries.size(); ++i) {
      serve::FrameType type = serve::FrameType::kPing;
      std::vector<std::uint8_t> payload;
      ASSERT_EQ(serve::ReadFrame(fd, &type, &payload, &error),
                serve::ReadStatus::kFrame)
          << "workers=" << workers << ": " << error;
      std::uint64_t id = 0;
      if (type == serve::FrameType::kHits) {
        std::vector<core::SearchHit> hits;
        ASSERT_TRUE(serve::GetHits(payload, &id, &hits, &error)) << error;
        ASSERT_GE(id, 300u);
        ASSERT_LT(id - 300, expected.size());
        ExpectSameHits(hits, expected[id - 300]);
        ++answered;
      } else {
        ASSERT_EQ(type, serve::FrameType::kOverloaded)
            << "workers=" << workers;
        ASSERT_TRUE(serve::GetControl(payload, &id, &error)) << error;
        ++shed;
      }
    }
    ::close(fd);
    EXPECT_EQ(answered + shed, static_cast<int>(queries.size()));
    EXPECT_GT(answered, 0) << "workers=" << workers;
    EXPECT_GT(shed, 0) << "workers=" << workers;
    const auto after = util::SnapshotMetrics();
    EXPECT_EQ(CounterValueOf(after, "serve.shed") -
                  CounterValueOf(before, "serve.shed"),
              static_cast<std::uint64_t>(shed))
        << "workers=" << workers;
    util::ClearFailpoints();
  }
}

TEST_F(ServeTest, ExpiredAtDequeueAnswersDeadlineExceededWithoutEncoding) {
  const core::AsteriaModel model(SmallModelConfig());
  const auto features = SyntheticFeatures(15, 151);
  const std::string index_path = TempPath("serve_ddl.idx");
  SaveIndexSnapshot(model, features, index_path);
  core::SearchIndex reference(model);
  std::string error;
  ASSERT_TRUE(reference.Load(index_path, &error)) << error;
  const std::string socket_path = TempPath("serve_ddl.sock");
  Harness harness(model, index_path, socket_path, /*workers=*/1);
  ASSERT_TRUE(harness.started());
  const auto queries = SyntheticFeatures(2, 152);

  // A 1 ms deadline against a 250 ms worker stall: expired long before the
  // worker triages it, so the daemon must answer kDeadlineExceeded without
  // ever encoding the query.
  Arm("serve.stall_worker=always");
  const auto before = util::SnapshotMetrics();
  const int fd = ConnectRaw(socket_path);
  ASSERT_GE(fd, 0);
  ASSERT_TRUE(SendAll(
      fd, BuildTopKFrameBytes(queries[0], 3, /*id=*/9, /*deadline_ms=*/1)));
  serve::FrameType type = serve::FrameType::kPing;
  std::vector<std::uint8_t> payload;
  ASSERT_EQ(serve::ReadFrame(fd, &type, &payload, &error),
            serve::ReadStatus::kFrame)
      << error;
  EXPECT_EQ(type, serve::FrameType::kDeadlineExceeded);
  std::uint64_t id = 0;
  ASSERT_TRUE(serve::GetControl(payload, &id, &error)) << error;
  EXPECT_EQ(id, 9u);
  const auto after = util::SnapshotMetrics();
  EXPECT_EQ(SpanCountOf(after, "encode"), SpanCountOf(before, "encode"))
      << "an expired query was encoded anyway";
  EXPECT_EQ(CounterValueOf(after, "serve.deadline_exceeded") -
                CounterValueOf(before, "serve.deadline_exceeded"),
            1u);

  // The connection survived the expiry; an undeadlined query on the same
  // socket still answers bitwise-correctly.
  util::ClearFailpoints();
  ASSERT_TRUE(SendAll(fd, BuildTopKFrameBytes(queries[1], 3, /*id=*/10)));
  ASSERT_EQ(serve::ReadFrame(fd, &type, &payload, &error),
            serve::ReadStatus::kFrame)
      << error;
  ASSERT_EQ(type, serve::FrameType::kHits);
  std::vector<core::SearchHit> hits;
  ASSERT_TRUE(serve::GetHits(payload, &id, &hits, &error)) << error;
  EXPECT_EQ(id, 10u);
  ExpectSameHits(hits, reference.TopK(queries[1], 3));
  ::close(fd);
}

TEST_F(ServeTest, DisconnectCancelsQueuedQueriesViaEpoch) {
  const core::AsteriaModel model(SmallModelConfig());
  const auto features = SyntheticFeatures(15, 161);
  const std::string index_path = TempPath("serve_epoch.idx");
  SaveIndexSnapshot(model, features, index_path);
  core::SearchIndex reference(model);
  std::string error;
  ASSERT_TRUE(reference.Load(index_path, &error)) << error;
  const std::string socket_path = TempPath("serve_epoch.sock");
  Harness harness(model, index_path, socket_path, /*workers=*/1);
  ASSERT_TRUE(harness.started());

  // Pipeline six queries into a stalled daemon, then vanish. The reader
  // sees EOF while the worker is still sleeping, bumps the connection's
  // cancel epoch, and every one of the six is skipped at dispatch — the
  // daemon never scores work nobody is waiting for.
  Arm("serve.stall_worker=always");
  const std::uint64_t cancelled_before =
      CounterValueOf(util::SnapshotMetrics(), "serve.cancelled");
  const auto queries = SyntheticFeatures(6, 162);
  const int fd = ConnectRaw(socket_path);
  ASSERT_GE(fd, 0);
  for (std::uint64_t i = 0; i < queries.size(); ++i) {
    ASSERT_TRUE(SendAll(fd, BuildTopKFrameBytes(queries[i], 3, 400 + i)));
  }
  ::close(fd);
  AwaitCounterDelta("serve.cancelled", cancelled_before, queries.size());
  util::ClearFailpoints();

  // The daemon is unharmed: a healthy client gets bitwise-correct results.
  serve::Client healthy;
  ASSERT_TRUE(healthy.Connect(socket_path, &error)) << error;
  std::vector<core::SearchHit> hits;
  ASSERT_TRUE(healthy.TopK(queries[0], 3, &hits, &error)) << error;
  ExpectSameHits(hits, reference.TopK(queries[0], 3));
}

TEST_F(ServeTest, ExplicitCancelFrameSkipsTheQueryBeforeScoring) {
  const core::AsteriaModel model(SmallModelConfig());
  const auto features = SyntheticFeatures(15, 171);
  const std::string index_path = TempPath("serve_cancel.idx");
  SaveIndexSnapshot(model, features, index_path);
  core::SearchIndex reference(model);
  std::string error;
  ASSERT_TRUE(reference.Load(index_path, &error)) << error;
  const std::string socket_path = TempPath("serve_cancel.sock");
  Harness harness(model, index_path, socket_path, /*workers=*/1);
  ASSERT_TRUE(harness.started());
  const auto queries = SyntheticFeatures(2, 172);

  Arm("serve.stall_worker=always");
  const std::uint64_t cancelled_before =
      CounterValueOf(util::SnapshotMetrics(), "serve.cancelled");
  const int fd = ConnectRaw(socket_path);
  ASSERT_GE(fd, 0);
  // Query 42 goes into the stalled daemon; the kCancel for it is processed
  // by the reader (kOk ack) before any worker can triage it.
  ASSERT_TRUE(SendAll(fd, BuildTopKFrameBytes(queries[0], 3, /*id=*/42)));
  store::ChunkBuilder cancel_payload;
  serve::PutControl(42, &cancel_payload);
  ASSERT_TRUE(SendAll(
      fd, BuildFrameBytes(serve::kServeMagic, serve::kProtocolVersion,
                          static_cast<std::uint32_t>(serve::FrameType::kCancel),
                          cancel_payload)));
  serve::FrameType type = serve::FrameType::kPing;
  std::vector<std::uint8_t> payload;
  ASSERT_EQ(serve::ReadFrame(fd, &type, &payload, &error),
            serve::ReadStatus::kFrame)
      << error;
  EXPECT_EQ(type, serve::FrameType::kOk);
  std::uint64_t id = 0;
  ASSERT_TRUE(serve::GetControl(payload, &id, &error)) << error;
  EXPECT_EQ(id, 42u);

  // Un-stall and send query 43: the next frame on the wire must be 43's
  // hits — 42 was skipped, not answered late.
  util::ClearFailpoints();
  ASSERT_TRUE(SendAll(fd, BuildTopKFrameBytes(queries[1], 3, /*id=*/43)));
  ASSERT_EQ(serve::ReadFrame(fd, &type, &payload, &error),
            serve::ReadStatus::kFrame)
      << error;
  ASSERT_EQ(type, serve::FrameType::kHits);
  std::vector<core::SearchHit> hits;
  ASSERT_TRUE(serve::GetHits(payload, &id, &hits, &error)) << error;
  EXPECT_EQ(id, 43u);
  ExpectSameHits(hits, reference.TopK(queries[1], 3));
  ::close(fd);
  EXPECT_EQ(CounterValueOf(util::SnapshotMetrics(), "serve.cancelled") -
                cancelled_before,
            1u);
}

TEST_F(ServeTest, SlowWriterIsDisconnectedAtIoTimeoutWithoutStallingOthers) {
  const core::AsteriaModel model(SmallModelConfig());
  const auto features = SyntheticFeatures(15, 181);
  const std::string index_path = TempPath("serve_slow.idx");
  SaveIndexSnapshot(model, features, index_path);
  core::SearchIndex reference(model);
  std::string error;
  ASSERT_TRUE(reference.Load(index_path, &error)) << error;
  const std::string socket_path = TempPath("serve_slow.sock");
  Harness harness(model, index_path, socket_path, /*workers=*/1,
                  /*batch_max=*/8, [](serve::ServerConfig* config) {
                    config->io_timeout_ms = 300;
                  });
  ASSERT_TRUE(harness.started());
  const auto queries = SyntheticFeatures(1, 182);
  const std::uint64_t timeouts_before =
      CounterValueOf(util::SnapshotMetrics(), "serve.io_timeouts");

  // The slow writer: a valid frame start, then silence. The reader's frame
  // assembly clock is armed by the first byte; the whole frame never
  // arrives, so at io_timeout_ms the daemon must cut the connection loose.
  const std::vector<std::uint8_t> frame = BuildTopKFrameBytes(queries[0], 3);
  const int slow_fd = ConnectRaw(socket_path);
  ASSERT_GE(slow_fd, 0);
  ASSERT_TRUE(SendAll(slow_fd, std::vector<std::uint8_t>(
                                   frame.begin(), frame.begin() + 40)));
  const auto start = std::chrono::steady_clock::now();

  // Meanwhile a healthy client on the same single-worker daemon is not
  // blocked behind the trickler.
  serve::Client healthy;
  ASSERT_TRUE(healthy.Connect(socket_path, &error)) << error;
  std::vector<core::SearchHit> hits;
  ASSERT_TRUE(healthy.TopK(queries[0], 3, &hits, &error)) << error;
  ExpectSameHits(hits, reference.TopK(queries[0], 3));

  // The slow connection gets an error reply and/or a close, well before
  // our 10 s recv timeout would call it a hang.
  std::uint8_t buffer[256];
  bool closed = false;
  for (int i = 0; i < 8 && !closed; ++i) {
    const ssize_t n = ::recv(slow_fd, buffer, sizeof(buffer), 0);
    if (n == 0) closed = true;
    ASSERT_FALSE(n < 0 && errno != EINTR) << "slow writer hung, not cut";
  }
  EXPECT_TRUE(closed);
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  EXPECT_LT(elapsed.count(), 5000) << "disconnect was not bounded";
  EXPECT_GE(CounterValueOf(util::SnapshotMetrics(), "serve.io_timeouts") -
                timeouts_before,
            1u);
  ::close(slow_fd);

  // And the daemon still serves.
  ASSERT_TRUE(healthy.TopK(queries[0], 3, &hits, &error)) << error;
}

TEST_F(ServeTest, DrainWindowExpiryAnswersShuttingDown) {
  const core::AsteriaModel model(SmallModelConfig());
  const auto features = SyntheticFeatures(15, 191);
  const std::string index_path = TempPath("serve_drainx.idx");
  SaveIndexSnapshot(model, features, index_path);
  const std::string socket_path = TempPath("serve_drainx.sock");
  auto harness = std::make_unique<Harness>(
      model, index_path, socket_path, /*workers=*/1, /*batch_max=*/1,
      [](serve::ServerConfig* config) { config->drain_timeout_ms = 30; });
  ASSERT_TRUE(harness->started());

  // Six queries against a worker that needs 250 ms per one-query batch and
  // a 30 ms drain window: the window must close with work still queued, and
  // every unanswered query gets an explicit kShuttingDown — not silence.
  Arm("serve.stall_worker=always");
  const std::uint64_t dropped_before =
      CounterValueOf(util::SnapshotMetrics(), "serve.drain_dropped");
  const auto queries = SyntheticFeatures(6, 192);
  const int fd = ConnectRaw(socket_path);
  ASSERT_GE(fd, 0);
  for (std::uint64_t i = 0; i < queries.size(); ++i) {
    ASSERT_TRUE(SendAll(fd, BuildTopKFrameBytes(queries[i], 3, 500 + i)));
  }
  // Make sure the queries are actually queued before pulling the plug.
  serve::Client probe;
  std::string error;
  ASSERT_TRUE(probe.Connect(socket_path, &error)) << error;
  for (int i = 0; i < 500; ++i) {
    serve::HealthInfo info;
    ASSERT_TRUE(probe.Health(&info, &error)) << error;
    if (info.queue_depth >= 4) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  harness.reset();  // RequestStop + join: the drain window runs and expires

  std::vector<bool> refused(queries.size(), false);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    serve::FrameType type = serve::FrameType::kPing;
    std::vector<std::uint8_t> payload;
    ASSERT_EQ(serve::ReadFrame(fd, &type, &payload, &error),
              serve::ReadStatus::kFrame)
        << error;
    ASSERT_EQ(type, serve::FrameType::kShuttingDown);
    std::uint64_t id = 0;
    ASSERT_TRUE(serve::GetControl(payload, &id, &error)) << error;
    ASSERT_GE(id, 500u);
    ASSERT_LT(id - 500, refused.size());
    EXPECT_FALSE(refused[id - 500]);
    refused[id - 500] = true;
  }
  ::close(fd);
  EXPECT_EQ(CounterValueOf(util::SnapshotMetrics(), "serve.drain_dropped") -
                dropped_before,
            queries.size());
}

// ---------------------------------------------------------------------------
// The retrying client

TEST_F(ServeTest, RetryBackoffIsSeededAndBounded) {
  util::Rng a(0), b(0);
  a.Reseed(42);
  b.Reseed(42);
  for (int attempt = 0; attempt < 10; ++attempt) {
    EXPECT_EQ(serve::RetryBackoffMs(10, 1000, attempt, &a),
              serve::RetryBackoffMs(10, 1000, attempt, &b))
        << "attempt " << attempt;
  }
  // Every draw lands in [full/2, full] where full = min(cap, base << n) —
  // jittered enough to spread a herd, floored enough to still back off.
  util::Rng c(0);
  c.Reseed(7);
  for (int attempt = 0; attempt < 48; ++attempt) {
    const std::uint64_t full =
        attempt >= 32 ? 1000
                      : std::min<std::uint64_t>(1000, 10ull << attempt);
    const std::uint64_t backoff = serve::RetryBackoffMs(10, 1000, attempt, &c);
    EXPECT_LE(backoff, full) << "attempt " << attempt;
    EXPECT_GE(backoff, full / 2) << "attempt " << attempt;
  }
}

TEST_F(ServeTest, ClientReconnectsAndRetriesAcrossDaemonRestart) {
  const core::AsteriaModel model(SmallModelConfig());
  const auto features = SyntheticFeatures(15, 201);
  const std::string index_path = TempPath("serve_restart.idx");
  SaveIndexSnapshot(model, features, index_path);
  core::SearchIndex reference(model);
  std::string error;
  ASSERT_TRUE(reference.Load(index_path, &error)) << error;
  const std::string socket_path = TempPath("serve_restart.sock");
  const auto queries = SyntheticFeatures(2, 202);

  auto harness = std::make_unique<Harness>(model, index_path, socket_path,
                                           /*workers=*/1);
  ASSERT_TRUE(harness->started());
  serve::ClientOptions options;
  options.max_retries = 5;
  options.backoff_base_ms = 5;
  options.backoff_cap_ms = 20;
  options.retry_seed = 7;
  serve::Client client;
  ASSERT_TRUE(client.Connect(socket_path, options, &error)) << error;
  std::vector<core::SearchHit> hits;
  ASSERT_TRUE(client.TopK(queries[0], 3, &hits, &error)) << error;
  EXPECT_EQ(client.retries(), 0);

  // Restart the daemon under the client's feet. Its next query hits a dead
  // socket, reconnects, retries, and succeeds — bitwise-identically.
  harness.reset();
  harness = std::make_unique<Harness>(model, index_path, socket_path,
                                      /*workers=*/1);
  ASSERT_TRUE(harness->started());
  ASSERT_TRUE(client.TopK(queries[1], 3, &hits, &error)) << error;
  EXPECT_GE(client.retries(), 1);
  ExpectSameHits(hits, reference.TopK(queries[1], 3));
}

TEST_F(ServeTest, MutationsAreNeverRetriedButIdempotentOpsAre) {
  const core::AsteriaModel model(SmallModelConfig());
  const auto features = SyntheticFeatures(10, 211);
  const std::string index_path = TempPath("serve_idem.idx");
  SaveIndexSnapshot(model, features, index_path);
  const std::string socket_path = TempPath("serve_idem.sock");
  Harness harness(model, index_path, socket_path, /*workers=*/1);
  ASSERT_TRUE(harness.started());

  serve::ClientOptions options;
  options.max_retries = 3;
  options.backoff_base_ms = 5;
  options.backoff_cap_ms = 20;
  std::string error;

  // The same injected fault both times: serve.accept=once makes the daemon
  // accept and immediately drop the connection, so the first exchange dies
  // in transport — exactly the ambiguity where a reload might still have
  // applied. The client must fail the mutation, not replay it.
  {
    Arm("serve.accept=once");
    serve::Client client;
    ASSERT_TRUE(client.Connect(socket_path, options, &error)) << error;
    EXPECT_FALSE(client.Reload(&error));
    EXPECT_EQ(client.retries(), 0) << "a mutation was retried";
  }

  // The identical fault against an idempotent op is retried to success.
  {
    Arm("serve.accept=once");
    serve::Client client;
    ASSERT_TRUE(client.Connect(socket_path, options, &error)) << error;
    EXPECT_TRUE(client.Ping(&error)) << error;
    EXPECT_GE(client.retries(), 1);
  }
}

TEST_F(ServeTest, HealthProbeReportsDaemonState) {
  const core::AsteriaModel model(SmallModelConfig());
  const auto features = SyntheticFeatures(20, 221);
  const std::string index_path = TempPath("serve_health.idx");
  SaveIndexSnapshot(model, features, index_path);
  const std::string socket_path = TempPath("serve_health.sock");
  Harness harness(model, index_path, socket_path, /*workers=*/2);
  ASSERT_TRUE(harness.started());

  serve::Client client;
  std::string error;
  ASSERT_TRUE(client.Connect(socket_path, &error)) << error;
  serve::HealthInfo info;
  ASSERT_TRUE(client.Health(&info, &error)) << error;
  EXPECT_EQ(info.index_size, 20u);
  EXPECT_EQ(info.queue_depth, 0u);  // idle daemon
  EXPECT_EQ(info.connections, 1u);  // just us
  EXPECT_FALSE(info.draining);
}

TEST_F(ServeTest, MaxConnsRejectsTheExcessConnection) {
  const core::AsteriaModel model(SmallModelConfig());
  const auto features = SyntheticFeatures(10, 231);
  const std::string index_path = TempPath("serve_conns.idx");
  SaveIndexSnapshot(model, features, index_path);
  const std::string socket_path = TempPath("serve_conns.sock");
  Harness harness(model, index_path, socket_path, /*workers=*/1,
                  /*batch_max=*/8, [](serve::ServerConfig* config) {
                    config->max_conns = 2;
                  });
  ASSERT_TRUE(harness.started());
  const std::uint64_t rejected_before =
      CounterValueOf(util::SnapshotMetrics(), "serve.conn_rejected");

  serve::Client first;
  serve::Client second;
  std::string error;
  ASSERT_TRUE(first.Connect(socket_path, &error)) << error;
  ASSERT_TRUE(first.Ping(&error)) << error;  // round trip = registered
  ASSERT_TRUE(second.Connect(socket_path, &error)) << error;
  ASSERT_TRUE(second.Ping(&error)) << error;

  // The third connection is told why and hung up on — not left dangling in
  // the accept backlog.
  const int fd = ConnectRaw(socket_path);
  ASSERT_GE(fd, 0);
  serve::FrameType type = serve::FrameType::kPing;
  std::vector<std::uint8_t> payload;
  ASSERT_EQ(serve::ReadFrame(fd, &type, &payload, &error),
            serve::ReadStatus::kFrame)
      << error;
  EXPECT_EQ(type, serve::FrameType::kOverloaded);
  std::uint8_t byte = 0;
  EXPECT_EQ(::recv(fd, &byte, 1, 0), 0);  // clean close after the reply
  ::close(fd);
  EXPECT_EQ(CounterValueOf(util::SnapshotMetrics(), "serve.conn_rejected") -
                rejected_before,
            1u);

  // Freeing a slot re-admits: close the first client and wait for its
  // reader to deregister, then a new client gets in.
  first.Close();
  for (int i = 0; i < 500; ++i) {
    serve::HealthInfo info;
    ASSERT_TRUE(second.Health(&info, &error)) << error;
    if (info.connections <= 1) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  serve::Client third;
  ASSERT_TRUE(third.Connect(socket_path, &error)) << error;
  EXPECT_TRUE(third.Ping(&error)) << error;
}

// ---------------------------------------------------------------------------
// Per-request tracing & live telemetry (docs/OBSERVABILITY.md "Per-request
// tracing"): v3 trace-id plumbing, wide-event request-log completeness,
// kStats, and the slow-query capture.

int CountRecords(const std::vector<util::RequestRecord>& records,
                 const char* op, util::RequestOutcome outcome) {
  int count = 0;
  for (const util::RequestRecord& record : records) {
    if (std::strcmp(record.op, op) == 0 && record.outcome == outcome) ++count;
  }
  return count;
}

int CountOpRecords(const std::vector<util::RequestRecord>& records,
                   const char* op) {
  int count = 0;
  for (const util::RequestRecord& record : records) {
    if (std::strcmp(record.op, op) == 0) ++count;
  }
  return count;
}

// Records are cut AFTER the reply hits the wire, so a client that just read
// its reply may be microseconds ahead of the daemon's record. Poll for the
// expected count (~5s) instead of snapshotting immediately.
void AwaitRecordCount(const char* op, util::RequestOutcome outcome,
                      int want) {
  for (int i = 0; i < 500; ++i) {
    if (CountRecords(util::GlobalRequestLog().Snapshot(), op, outcome) >=
        want) {
      return;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  FAIL() << op << "/" << util::RequestOutcomeName(outcome)
         << " never reached " << want << " records";
}

void AwaitOpRecordCount(const char* op, int want) {
  for (int i = 0; i < 500; ++i) {
    if (CountOpRecords(util::GlobalRequestLog().Snapshot(), op) >= want) {
      return;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  FAIL() << op << " never reached " << want << " records";
}

TEST_F(ServeTest, OlderFrameVersionsStillAccepted) {
  const core::AsteriaModel model(SmallModelConfig());
  const auto features = SyntheticFeatures(10, 241);
  const std::string index_path = TempPath("serve_ver.idx");
  SaveIndexSnapshot(model, features, index_path);
  const std::string socket_path = TempPath("serve_ver.sock");
  Harness harness(model, index_path, socket_path, /*workers=*/1);
  ASSERT_TRUE(harness.started());

  // A v1 frame is the bare 24-byte header, a v2 frame adds the deadline —
  // both predate trace ids and both must still answer. The reply echoes the
  // *request's* version (an old client would reject a v3 reply header as an
  // unsupported version), so the trace field stays 0 (nothing to carry it).
  std::string error;
  for (const std::uint32_t version :
       {serve::kProtocolVersionV1, serve::kProtocolVersionV2}) {
    const int fd = ConnectRaw(socket_path);
    ASSERT_GE(fd, 0) << "version=" << version;
    store::ChunkBuilder payload;
    serve::PutControl(/*id=*/5, &payload);
    ASSERT_TRUE(SendAll(
        fd, BuildFrameBytes(serve::kServeMagic, version,
                            static_cast<std::uint32_t>(serve::FrameType::kPing),
                            payload)));
    serve::FrameType type = serve::FrameType::kError;
    std::vector<std::uint8_t> reply;
    std::uint64_t reply_trace = 99;
    std::uint32_t reply_version = 0;
    ASSERT_EQ(serve::ReadFrame(fd, &type, &reply, &error,
                               /*deadline_ms=*/nullptr, /*io_timeout_ms=*/0,
                               &reply_trace, &reply_version),
              serve::ReadStatus::kFrame)
        << "version=" << version << ": " << error;
    EXPECT_EQ(type, serve::FrameType::kPong) << "version=" << version;
    EXPECT_EQ(reply_version, version) << "reply must echo request version";
    EXPECT_EQ(reply_trace, 0u) << "version=" << version;
    std::uint64_t id = 0;
    ASSERT_TRUE(serve::GetControl(reply, &id, &error)) << error;
    EXPECT_EQ(id, 5u);
    ::close(fd);
  }
}

TEST_F(ServeTest, TraceIdIsEchoedOnReplies) {
  const core::AsteriaModel model(SmallModelConfig());
  const auto features = SyntheticFeatures(10, 251);
  const std::string index_path = TempPath("serve_echo.idx");
  SaveIndexSnapshot(model, features, index_path);
  const std::string socket_path = TempPath("serve_echo.sock");
  Harness harness(model, index_path, socket_path, /*workers=*/1);
  ASSERT_TRUE(harness.started());

  const auto queries = SyntheticFeatures(1, 252);
  const std::uint64_t trace = 0xfeedbeefcafe0123ull;
  const int fd = ConnectRaw(socket_path);
  ASSERT_GE(fd, 0);
  std::string error;

  // Query replies echo the request's trace id byte-for-byte.
  ASSERT_TRUE(SendAll(fd, BuildTopKFrameBytes(queries[0], 3, /*id=*/7,
                                              /*deadline_ms=*/0, trace)));
  serve::FrameType type = serve::FrameType::kError;
  std::vector<std::uint8_t> reply;
  std::uint64_t reply_trace = 0;
  ASSERT_EQ(serve::ReadFrame(fd, &type, &reply, &error,
                             /*deadline_ms=*/nullptr, /*io_timeout_ms=*/0,
                             &reply_trace),
            serve::ReadStatus::kFrame)
      << error;
  EXPECT_EQ(type, serve::FrameType::kHits);
  EXPECT_EQ(reply_trace, trace);

  // Control replies echo it too (the reader path, not the worker path).
  store::ChunkBuilder ping;
  serve::PutControl(/*id=*/8, &ping);
  ASSERT_TRUE(SendAll(
      fd, BuildFrameBytes(serve::kServeMagic, serve::kProtocolVersion,
                          static_cast<std::uint32_t>(serve::FrameType::kPing),
                          ping, /*deadline_ms=*/0, trace + 1)));
  reply_trace = 0;
  ASSERT_EQ(serve::ReadFrame(fd, &type, &reply, &error,
                             /*deadline_ms=*/nullptr, /*io_timeout_ms=*/0,
                             &reply_trace),
            serve::ReadStatus::kFrame)
      << error;
  EXPECT_EQ(type, serve::FrameType::kPong);
  EXPECT_EQ(reply_trace, trace + 1);
  ::close(fd);
}

TEST_F(ServeTest, ClientAndServerRecordsJoinOnTraceId) {
  const core::AsteriaModel model(SmallModelConfig());
  const auto features = SyntheticFeatures(10, 261);
  const std::string index_path = TempPath("serve_join.idx");
  SaveIndexSnapshot(model, features, index_path);
  const std::string socket_path = TempPath("serve_join.sock");
  Harness harness(model, index_path, socket_path, /*workers=*/2);
  ASSERT_TRUE(harness.started());

  util::GlobalRequestLog().ResetForTest();
  serve::Client client;
  std::string error;
  ASSERT_TRUE(client.Connect(socket_path, &error)) << error;
  const auto queries = SyntheticFeatures(1, 262);
  std::vector<core::SearchHit> hits;
  ASSERT_TRUE(client.TopK(queries[0], 3, &hits, &error)) << error;
  AwaitRecordCount("serve.topk", util::RequestOutcome::kOk, 1);

  // Both sides run in this process, so both halves of the join land in the
  // same global ring: the client's per-attempt record and the daemon's
  // per-request record must carry the SAME nonzero trace id.
  const auto records = util::GlobalRequestLog().Snapshot();
  const util::RequestRecord* client_side = nullptr;
  const util::RequestRecord* server_side = nullptr;
  for (const util::RequestRecord& record : records) {
    if (std::strcmp(record.op, "client.topk") == 0) client_side = &record;
    if (std::strcmp(record.op, "serve.topk") == 0) server_side = &record;
  }
  ASSERT_NE(client_side, nullptr);
  ASSERT_NE(server_side, nullptr);
  EXPECT_NE(client_side->trace_id, 0u);
  EXPECT_EQ(client_side->trace_id, server_side->trace_id);
  EXPECT_EQ(client_side->outcome, util::RequestOutcome::kOk);
  EXPECT_STREQ(server_side->name, queries[0].name.c_str());
  EXPECT_STREQ(client_side->name, queries[0].name.c_str());
  // The attributed stage timings only exist server-side; the client's view
  // is the whole round trip.
  EXPECT_GE(server_side->batch_size, 1u);
  EXPECT_GT(server_side->scored_pairs, 0u);
  EXPECT_GT(client_side->reply_nanos, 0u);
}

TEST_F(ServeTest, RequestLogCompleteUnderShedDeadlineCancelAtEveryWorkerCount) {
  const core::AsteriaModel model(SmallModelConfig());
  const auto features = SyntheticFeatures(15, 271);
  const std::string index_path = TempPath("serve_rlog.idx");
  SaveIndexSnapshot(model, features, index_path);
  const auto queries = SyntheticFeatures(12, 272);
  std::string error;

  for (const int workers : {1, 2, 8}) {
    util::GlobalRequestLog().ResetForTest();
    Arm("serve.stall_worker=always");
    const std::string socket_path =
        TempPath("serve_rlog" + std::to_string(workers) + ".sock");
    Harness harness(model, index_path, socket_path, workers, /*batch_max=*/1,
                    [](serve::ServerConfig* config) {
                      config->queue_high_water = 2;
                    });
    ASSERT_TRUE(harness.started());

    // Phase 1 — shed: a 12-query burst against stalled workers and a
    // 2-deep admission gate. Count answered vs shed off the wire, then
    // demand the ring holds exactly one record per query, each under the
    // outcome the wire reported. Nothing double-cut, nothing dropped.
    {
      const int fd = ConnectRaw(socket_path);
      ASSERT_GE(fd, 0);
      for (std::uint64_t i = 0; i < queries.size(); ++i) {
        ASSERT_TRUE(SendAll(fd, BuildTopKFrameBytes(queries[i], 3, 500 + i)));
      }
      int answered = 0;
      int shed = 0;
      for (std::size_t i = 0; i < queries.size(); ++i) {
        serve::FrameType type = serve::FrameType::kPing;
        std::vector<std::uint8_t> payload;
        ASSERT_EQ(serve::ReadFrame(fd, &type, &payload, &error),
                  serve::ReadStatus::kFrame)
            << "workers=" << workers << ": " << error;
        if (type == serve::FrameType::kHits) {
          ++answered;
        } else {
          ASSERT_EQ(type, serve::FrameType::kOverloaded)
              << "workers=" << workers;
          ++shed;
        }
      }
      ::close(fd);
      ASSERT_GT(answered, 0) << "workers=" << workers;
      ASSERT_GT(shed, 0) << "workers=" << workers;
      AwaitRecordCount("serve.topk", util::RequestOutcome::kOk, answered);
      AwaitRecordCount("serve.topk", util::RequestOutcome::kShed, shed);
      const auto records = util::GlobalRequestLog().Snapshot();
      EXPECT_EQ(CountRecords(records, "serve.topk", util::RequestOutcome::kOk),
                answered)
          << "workers=" << workers;
      EXPECT_EQ(
          CountRecords(records, "serve.topk", util::RequestOutcome::kShed),
          shed)
          << "workers=" << workers;
    }

    // Phase 2 — deadline: 1 ms budget vs a 250 ms stall. The expiry must
    // cut exactly one deadline_exceeded record.
    {
      const int fd = ConnectRaw(socket_path);
      ASSERT_GE(fd, 0);
      ASSERT_TRUE(SendAll(fd, BuildTopKFrameBytes(queries[0], 3, /*id=*/600,
                                                  /*deadline_ms=*/1)));
      serve::FrameType type = serve::FrameType::kPing;
      std::vector<std::uint8_t> payload;
      ASSERT_EQ(serve::ReadFrame(fd, &type, &payload, &error),
                serve::ReadStatus::kFrame)
          << "workers=" << workers << ": " << error;
      EXPECT_EQ(type, serve::FrameType::kDeadlineExceeded);
      ::close(fd);
      AwaitRecordCount("serve.topk", util::RequestOutcome::kDeadlineExceeded,
                       1);
      const auto records = util::GlobalRequestLog().Snapshot();
      EXPECT_EQ(CountRecords(records, "serve.topk",
                             util::RequestOutcome::kDeadlineExceeded),
                1)
          << "workers=" << workers;
      // A deadline record keeps its budget accounting: deadline armed,
      // slack spent (negative — it expired).
      for (const util::RequestRecord& record : records) {
        if (record.outcome == util::RequestOutcome::kDeadlineExceeded) {
          EXPECT_TRUE(record.has_deadline);
          EXPECT_LT(record.deadline_slack_nanos, 0);
        }
      }
    }

    // Phase 3 — cancel: queue four queries into the stall, vanish. Whether
    // a given query lands cancelled (admitted, then the disconnect epoch
    // bumped) or shed (queue already at the high-water mark) depends on how
    // fast a worker drains the queue — but the ACCOUNTING must be exact:
    // every query cuts exactly one record, and the per-outcome record
    // tallies must equal the authoritative counters. At least the first
    // query is always admitted (empty queue) and always cancelled (its
    // triage runs a full stall after the EOF bump).
    {
      const auto before_records = util::GlobalRequestLog().Snapshot();
      const int topk_before = CountOpRecords(before_records, "serve.topk");
      const int cancelled_rec_before = CountRecords(
          before_records, "serve.topk", util::RequestOutcome::kCancelled);
      const int shed_rec_before = CountRecords(before_records, "serve.topk",
                                               util::RequestOutcome::kShed);
      const auto counters_before = util::SnapshotMetrics();
      const int fd = ConnectRaw(socket_path);
      ASSERT_GE(fd, 0);
      for (std::uint64_t i = 0; i < 4; ++i) {
        ASSERT_TRUE(SendAll(fd, BuildTopKFrameBytes(queries[i], 3, 700 + i)));
      }
      ::close(fd);
      AwaitOpRecordCount("serve.topk", topk_before + 4);
      const auto records = util::GlobalRequestLog().Snapshot();
      const auto counters_after = util::SnapshotMetrics();
      EXPECT_EQ(CountOpRecords(records, "serve.topk"), topk_before + 4)
          << "workers=" << workers;
      const int cancelled_records =
          CountRecords(records, "serve.topk",
                       util::RequestOutcome::kCancelled) -
          cancelled_rec_before;
      const int shed_records =
          CountRecords(records, "serve.topk", util::RequestOutcome::kShed) -
          shed_rec_before;
      EXPECT_EQ(static_cast<std::uint64_t>(cancelled_records),
                CounterValueOf(counters_after, "serve.cancelled") -
                    CounterValueOf(counters_before, "serve.cancelled"))
          << "workers=" << workers;
      EXPECT_EQ(static_cast<std::uint64_t>(shed_records),
                CounterValueOf(counters_after, "serve.shed") -
                    CounterValueOf(counters_before, "serve.shed"))
          << "workers=" << workers;
      EXPECT_GE(cancelled_records, 1) << "workers=" << workers;
      EXPECT_EQ(cancelled_records + shed_records, 4)
          << "workers=" << workers;
      // The shed record keeps its query name even though admission moved
      // the request away before cutting it.
      for (const util::RequestRecord& record : records) {
        if (record.outcome == util::RequestOutcome::kShed) {
          EXPECT_EQ(std::strncmp(record.name, "fn", 2), 0)
              << "shed record lost its name";
        }
      }
    }
    util::ClearFailpoints();
  }
}

TEST_F(ServeTest, StatsProbeReportsCountersPercentilesAndSamples) {
  const core::AsteriaModel model(SmallModelConfig());
  const auto features = SyntheticFeatures(20, 281);
  const std::string index_path = TempPath("serve_stats.idx");
  SaveIndexSnapshot(model, features, index_path);
  const std::string socket_path = TempPath("serve_stats.sock");
  Harness harness(model, index_path, socket_path, /*workers=*/2,
                  /*batch_max=*/8, [](serve::ServerConfig* config) {
                    config->telemetry_interval_ms = 20;
                  });
  ASSERT_TRUE(harness.started());

  serve::Client client;
  std::string error;
  ASSERT_TRUE(client.Connect(socket_path, &error)) << error;
  const auto queries = SyntheticFeatures(5, 282);
  std::vector<core::SearchHit> hits;
  for (const core::FunctionFeature& query : queries) {
    ASSERT_TRUE(client.TopK(query, 3, &hits, &error)) << error;
  }
  // Let the 20 ms sampler tick a few times past the post-query totals.
  std::this_thread::sleep_for(std::chrono::milliseconds(80));

  serve::StatsInfo info;
  ASSERT_TRUE(client.Stats(&info, &error)) << error;
  EXPECT_EQ(info.index_size, 20u);
  EXPECT_EQ(info.queue_depth, 0u);
  EXPECT_EQ(info.connections, 1u);
  // Counter totals are process-cumulative (earlier tests in this binary
  // also served traffic), so assert floors, not exact values.
  EXPECT_GE(info.requests, 5u);
  EXPECT_GE(info.replies, 5u);
  // Five answered queries give the latency histogram real mass; the
  // percentile ladder must be populated and ordered.
  EXPECT_GT(info.p50_nanos, 0u);
  EXPECT_LE(info.p50_nanos, info.p95_nanos);
  EXPECT_LE(info.p95_nanos, info.p99_nanos);
  // The sampler was armed at 20 ms: the ring holds the Start() baseline
  // plus ticks, oldest first (ages non-increasing toward the newest).
  ASSERT_GE(info.samples.size(), 2u);
  for (std::size_t i = 1; i < info.samples.size(); ++i) {
    EXPECT_LE(info.samples[i].age_ms, info.samples[i - 1].age_ms)
        << "sample " << i << " out of order";
  }
  EXPECT_GE(info.samples.back().replies, 5u);
}

TEST_F(ServeTest, HealthProbeReportsCumulativeTotals) {
  const core::AsteriaModel model(SmallModelConfig());
  const auto features = SyntheticFeatures(10, 291);
  const std::string index_path = TempPath("serve_totals.idx");
  SaveIndexSnapshot(model, features, index_path);
  const std::string socket_path = TempPath("serve_totals.sock");
  Harness harness(model, index_path, socket_path, /*workers=*/1);
  ASSERT_TRUE(harness.started());

  serve::Client client;
  std::string error;
  ASSERT_TRUE(client.Connect(socket_path, &error)) << error;
  serve::HealthInfo before;
  ASSERT_TRUE(client.Health(&before, &error)) << error;

  const auto queries = SyntheticFeatures(3, 292);
  std::vector<core::SearchHit> hits;
  for (const core::FunctionFeature& query : queries) {
    ASSERT_TRUE(client.TopK(query, 3, &hits, &error)) << error;
  }
  // The reply counter is bumped after the reply hits the wire, so a probe
  // can race the last increment by one tick; poll for the settled total.
  serve::HealthInfo after;
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(client.Health(&after, &error)) << error;
    if (after.answered >= before.answered + 3) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GE(after.answered, before.answered + 3);
  EXPECT_GE(after.uptime_ms, before.uptime_ms);
  // The totals are cumulative process counters (other tests in this binary
  // may have shed or expired queries); this daemon saw clean traffic only.
  EXPECT_EQ(after.shed, before.shed);
  EXPECT_EQ(after.deadline_exceeded, before.deadline_exceeded);
}

TEST_F(ServeTest, SlowQueryCaptureSpillsAnsweredQueries) {
  const core::AsteriaModel model(SmallModelConfig());
  const auto features = SyntheticFeatures(15, 301);
  const std::string index_path = TempPath("serve_slow.idx");
  SaveIndexSnapshot(model, features, index_path);
  const std::string socket_path = TempPath("serve_slow.sock");
  const std::string slow_log = TempPath("serve_slow.jsonl");
  ::unlink(slow_log.c_str());
  // Threshold 0 = every answered query spills, so the capture is
  // deterministic without having to manufacture a genuinely slow query.
  Harness harness(model, index_path, socket_path, /*workers=*/2,
                  /*batch_max=*/8, [&slow_log](serve::ServerConfig* config) {
                    config->slow_query_ms = 0;
                    config->slow_log_path = slow_log;
                  });
  ASSERT_TRUE(harness.started());

  serve::Client client;
  std::string error;
  ASSERT_TRUE(client.Connect(socket_path, &error)) << error;
  const auto queries = SyntheticFeatures(3, 302);
  std::vector<core::SearchHit> hits;
  for (const core::FunctionFeature& query : queries) {
    ASSERT_TRUE(client.TopK(query, 3, &hits, &error)) << error;
  }

  // The spill happens after the reply hits the wire; poll for it.
  std::vector<util::ParsedRequestRecord> records;
  int corrupt = 0;
  for (int i = 0; i < 500 && records.size() < queries.size(); ++i) {
    records.clear();
    corrupt = 0;
    util::ReadRequestLogFile(slow_log, &records, &corrupt, &error);
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_EQ(records.size(), queries.size());
  EXPECT_EQ(corrupt, 0);
  for (const util::ParsedRequestRecord& record : records) {
    EXPECT_EQ(record.op, "serve.topk");
    EXPECT_EQ(record.outcome, "ok");
    EXPECT_NE(record.trace_id, 0u);  // minted by the client, carried v3
    EXPECT_EQ(record.name.substr(0, 2), "fn");
    EXPECT_GT(record.batch_size, 0u);
    EXPECT_GT(record.scored_pairs, 0u);
    EXPECT_FALSE(record.has_deadline);
  }
}

}  // namespace
}  // namespace asteria
