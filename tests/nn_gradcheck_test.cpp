// Central finite-difference gradient checks for every Tape op — the file
// promised by nn/autograd.h. One focused test per op (plus the composite
// heads), so a broken backward rule fails with the op's name in the test
// id, not somewhere inside a Tree-LSTM graph. Also pins the |x| subgradient
// convention at exactly x == 0, which finite differences cannot probe.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <vector>

#include "nn/autograd.h"
#include "nn/parameter.h"
#include "util/rng.h"

namespace asteria::nn {
namespace {

// Builds a scalar loss from `params` through `graph`, then compares every
// analytic gradient against (f(x+eps) - f(x-eps)) / (2 eps).
void GradCheck(std::vector<Parameter*> params,
               const std::function<Var(Tape&)>& graph, double tol = 1e-6) {
  Tape tape;
  const Var loss = graph(tape);
  ASSERT_EQ(tape.value(loss).size(), 1u);
  for (Parameter* p : params) p->ZeroGrad();
  tape.Backward(loss);
  const double eps = 1e-5;
  for (Parameter* p : params) {
    for (std::size_t i = 0; i < p->value.size(); ++i) {
      const double saved = p->value[i];
      p->value[i] = saved + eps;
      Tape t1;
      const double up = t1.value(graph(t1))(0, 0);
      p->value[i] = saved - eps;
      Tape t2;
      const double down = t2.value(graph(t2))(0, 0);
      p->value[i] = saved;
      const double numeric = (up - down) / (2 * eps);
      EXPECT_NEAR(p->grad[i], numeric, tol) << p->name << "[" << i << "]";
    }
  }
}

Matrix RandomMatrix(int rows, int cols, util::Rng& rng) {
  Matrix m(rows, cols);
  for (std::size_t i = 0; i < m.size(); ++i) m[i] = rng.NextDouble(-1, 1);
  return m;
}

// Keeps entries away from 0 (for Div denominators, Sqrt inputs, and the
// non-differentiable points of Abs/Relu that finite differences straddle).
void ShiftAwayFromZero(Parameter* p, double floor_magnitude) {
  for (std::size_t i = 0; i < p->value.size(); ++i) {
    const double sign = p->value[i] < 0 ? -1.0 : 1.0;
    p->value[i] = sign * (floor_magnitude + std::fabs(p->value[i]));
  }
}

class GradCheckOp : public ::testing::Test {
 protected:
  util::Rng rng_{12345};
  ParameterStore store_;
};

// ---- one test per primitive op ------------------------------------------

TEST_F(GradCheckOp, Add) {
  Parameter* a = store_.CreateXavier("a", 3, 2, rng_);
  Parameter* b = store_.CreateXavier("b", 3, 2, rng_);
  GradCheck({a, b}, [&](Tape& t) {
    return t.Sum(t.Square(t.Add(t.Param(a), t.Param(b))));
  });
}

TEST_F(GradCheckOp, Sub) {
  Parameter* a = store_.CreateXavier("a", 3, 2, rng_);
  Parameter* b = store_.CreateXavier("b", 3, 2, rng_);
  GradCheck({a, b}, [&](Tape& t) {
    return t.Sum(t.Square(t.Sub(t.Param(a), t.Param(b))));
  });
}

TEST_F(GradCheckOp, MatMul) {
  Parameter* a = store_.CreateXavier("a", 3, 4, rng_);
  Parameter* b = store_.CreateXavier("b", 4, 2, rng_);
  GradCheck({a, b}, [&](Tape& t) {
    return t.Sum(t.Square(t.MatMul(t.Param(a), t.Param(b))));
  });
}

TEST_F(GradCheckOp, MatMulTransA) {
  // The eq. (8) head shape: W stored (2n x 2), applied as W^T x.
  Parameter* w = store_.CreateXavier("w", 6, 2, rng_);
  Parameter* x = store_.CreateXavier("x", 6, 1, rng_);
  GradCheck({w, x}, [&](Tape& t) {
    return t.Sum(t.Square(t.MatMulTransA(t.Param(w), t.Param(x))));
  });
}

TEST_F(GradCheckOp, Hadamard) {
  Parameter* a = store_.CreateXavier("a", 4, 1, rng_);
  Parameter* b = store_.CreateXavier("b", 4, 1, rng_);
  GradCheck({a, b}, [&](Tape& t) {
    return t.Sum(t.Hadamard(t.Param(a), t.Param(b)));
  });
}

TEST_F(GradCheckOp, DivElem) {
  Parameter* a = store_.CreateXavier("a", 4, 1, rng_);
  Parameter* b = store_.CreateXavier("b", 4, 1, rng_);
  ShiftAwayFromZero(b, 0.5);  // denominator must stay off 0 under +-eps
  GradCheck({a, b}, [&](Tape& t) {
    return t.Sum(t.Square(t.DivElem(t.Param(a), t.Param(b))));
  }, 1e-5);
}

TEST_F(GradCheckOp, Sigmoid) {
  Parameter* a = store_.CreateXavier("a", 5, 1, rng_);
  GradCheck({a}, [&](Tape& t) { return t.Sum(t.Sigmoid(t.Param(a))); });
}

TEST_F(GradCheckOp, Tanh) {
  Parameter* a = store_.CreateXavier("a", 5, 1, rng_);
  GradCheck({a}, [&](Tape& t) { return t.Sum(t.Tanh(t.Param(a))); });
}

TEST_F(GradCheckOp, Relu) {
  Parameter* a = store_.CreateXavier("a", 5, 1, rng_);
  ShiftAwayFromZero(a, 0.1);  // keep the kink out of the eps window
  GradCheck({a}, [&](Tape& t) { return t.Sum(t.Relu(t.Param(a))); });
}

TEST_F(GradCheckOp, Abs) {
  Parameter* a = store_.CreateXavier("a", 5, 1, rng_);
  ShiftAwayFromZero(a, 0.1);
  GradCheck({a}, [&](Tape& t) { return t.Sum(t.Abs(t.Param(a))); });
}

TEST_F(GradCheckOp, AbsSubgradientAtZero) {
  // Finite differences cannot probe x == 0 (they would measure 0 across the
  // kink); the documented convention is subgradient 0 there. Mixed-sign
  // neighbors make sure the zero entry is not just inheriting a zero
  // upstream gradient.
  Parameter* a = store_.Create("a", 3, 1);
  a->value(0, 0) = -0.7;
  a->value(1, 0) = 0.0;
  a->value(2, 0) = 0.4;
  a->ZeroGrad();
  Tape tape;
  const Var loss = tape.Sum(tape.Abs(tape.Param(a)));
  tape.Backward(loss);
  EXPECT_DOUBLE_EQ(a->grad(0, 0), -1.0);
  EXPECT_DOUBLE_EQ(a->grad(1, 0), 0.0);  // the subgradient choice
  EXPECT_DOUBLE_EQ(a->grad(2, 0), 1.0);
}

TEST_F(GradCheckOp, Square) {
  Parameter* a = store_.CreateXavier("a", 4, 2, rng_);
  GradCheck({a}, [&](Tape& t) { return t.Sum(t.Square(t.Param(a))); });
}

TEST_F(GradCheckOp, Sqrt) {
  Parameter* a = store_.CreateXavier("a", 4, 1, rng_);
  for (std::size_t i = 0; i < a->value.size(); ++i) {
    a->value[i] = 0.5 + std::fabs(a->value[i]);
  }
  GradCheck({a}, [&](Tape& t) { return t.Sum(t.Sqrt(t.Param(a))); });
}

TEST_F(GradCheckOp, Scale) {
  Parameter* a = store_.CreateXavier("a", 4, 1, rng_);
  GradCheck({a}, [&](Tape& t) { return t.Sum(t.Scale(t.Param(a), -2.5)); });
}

TEST_F(GradCheckOp, AddConst) {
  Parameter* a = store_.CreateXavier("a", 4, 1, rng_);
  GradCheck({a}, [&](Tape& t) {
    return t.Sum(t.Square(t.AddConst(t.Param(a), 1.25)));
  });
}

TEST_F(GradCheckOp, ConcatRows) {
  Parameter* a = store_.CreateXavier("a", 3, 1, rng_);
  Parameter* b = store_.CreateXavier("b", 2, 1, rng_);
  GradCheck({a, b}, [&](Tape& t) {
    return t.Sum(t.Square(t.ConcatRows(t.Param(a), t.Param(b))));
  });
}

TEST_F(GradCheckOp, Sum) {
  Parameter* a = store_.CreateXavier("a", 3, 3, rng_);
  GradCheck({a}, [&](Tape& t) { return t.Sum(t.Param(a)); });
}

TEST_F(GradCheckOp, Dot) {
  Parameter* a = store_.CreateXavier("a", 4, 1, rng_);
  Parameter* b = store_.CreateXavier("b", 4, 1, rng_);
  GradCheck({a, b}, [&](Tape& t) { return t.Dot(t.Param(a), t.Param(b)); });
}

TEST_F(GradCheckOp, Softmax) {
  Parameter* a = store_.CreateXavier("a", 4, 1, rng_);
  const Matrix weights = RandomMatrix(4, 1, rng_);
  // Weighted sum, so every softmax output (not just the sum, which is
  // constant 1) influences the loss.
  GradCheck({a}, [&](Tape& t) {
    return t.Dot(t.Softmax(t.Param(a)), t.Leaf(weights));
  });
}

TEST_F(GradCheckOp, BceLoss) {
  Parameter* a = store_.CreateXavier("a", 3, 1, rng_);
  Matrix target(3, 1);
  target(0, 0) = 1.0;
  target(2, 0) = 1.0;
  GradCheck({a}, [&](Tape& t) {
    return t.BceLoss(t.Sigmoid(t.Param(a)), target);
  });
}

TEST_F(GradCheckOp, SquaredErrorToConst) {
  Parameter* a = store_.CreateXavier("a", 1, 1, rng_);
  GradCheck({a}, [&](Tape& t) {
    return t.SquaredErrorToConst(t.Tanh(t.Param(a)), 0.5);
  });
}

TEST_F(GradCheckOp, Cosine) {
  Parameter* a = store_.CreateXavier("a", 6, 1, rng_);
  Parameter* b = store_.CreateXavier("b", 6, 1, rng_);
  GradCheck({a, b}, [&](Tape& t) {
    return t.Cosine(t.Param(a), t.Param(b));
  }, 1e-5);
}

TEST_F(GradCheckOp, EmbeddingRow) {
  Parameter* table = store_.CreateXavier("emb", 6, 4, rng_);
  GradCheck({table}, [&](Tape& t) {
    // Repeated rows must accumulate; untouched rows must stay zero (checked
    // implicitly: their numeric gradient is 0 and must match).
    Var sum = t.Add(t.EmbeddingRow(table, 2),
                    t.Hadamard(t.EmbeddingRow(table, 5),
                               t.EmbeddingRow(table, 2)));
    return t.Sum(t.Square(sum));
  });
}

TEST_F(GradCheckOp, LeafReceivesNoParameterGradient) {
  // Leaves are constants: a graph that only touches a Leaf must leave a
  // parameter's gradient untouched at zero.
  Parameter* a = store_.CreateXavier("a", 2, 1, rng_);
  a->ZeroGrad();
  Tape tape;
  const Var loss = tape.Sum(tape.Square(tape.Leaf(RandomMatrix(2, 1, rng_))));
  tape.Backward(loss);
  for (std::size_t i = 0; i < a->grad.size(); ++i) {
    EXPECT_DOUBLE_EQ(a->grad[i], 0.0);
  }
}

// ---- composite graphs ----------------------------------------------------

TEST_F(GradCheckOp, SiameseHeadShapedGraph) {
  // cat(|e1-e2|, e1.e2)^T W through softmax + BCE — the full eq. (8) head
  // with both encodings trainable.
  Parameter* e1 = store_.CreateXavier("e1", 4, 1, rng_);
  Parameter* e2 = store_.CreateXavier("e2", 4, 1, rng_);
  Parameter* w = store_.CreateXavier("w", 8, 2, rng_);
  Matrix target(2, 1);
  target(1, 0) = 1.0;
  GradCheck({e1, e2, w}, [&](Tape& t) {
    Var v1 = t.Param(e1);
    Var v2 = t.Param(e2);
    Var joint = t.ConcatRows(t.Abs(t.Sub(v1, v2)), t.Hadamard(v1, v2));
    return t.BceLoss(t.Softmax(t.MatMulTransA(t.Param(w), joint)), target);
  }, 1e-5);
}

TEST_F(GradCheckOp, DeepMixedChain) {
  // Long chain crossing most op families once more, catching wrong
  // chain-rule composition that per-op tests cannot see.
  Parameter* a = store_.CreateXavier("a", 3, 3, rng_);
  Parameter* b = store_.CreateXavier("b", 3, 1, rng_);
  ShiftAwayFromZero(b, 0.5);
  GradCheck({a, b}, [&](Tape& t) {
    Var h = t.Tanh(t.MatMul(t.Param(a), t.Param(b)));
    Var g = t.DivElem(t.Sigmoid(h), t.AddConst(t.Square(t.Param(b)), 1.0));
    return t.SquaredErrorToConst(t.Sum(t.Scale(g, 0.5)), 0.25);
  }, 1e-5);
}

}  // namespace
}  // namespace asteria::nn
