// Differential tests for the packed/pruned SearchIndex query paths.
//
// The contract under test is bitwise identity: TopK, TopKBatch,
// AboveThreshold, and AboveThresholdBatch — the blocked-GEMM sweep with the
// exact callee-distance prefilter — must return the same hits, the same
// scores (bit for bit), and the same order as the brute-force references
// (TopKReference/AboveThresholdReference), at every thread count, on
// monolithic and sharded indexes, for both siamese heads, and on
// adversarial callee-count distributions where the prune is either useless
// (all counts equal) or maximally aggressive (extreme spread).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "core/asteria.h"
#include "core/search_index.h"
#include "store/manifest.h"
#include "util/rng.h"

namespace asteria::core {
namespace {

using ::testing::TempDir;

std::string TempPath(const std::string& name) { return TempDir() + name; }

ast::Ast SmallTree(int variant) {
  ast::Ast tree;
  auto v1 = tree.AddVar("x");
  auto n1 = tree.AddNum(3);
  auto asg = tree.AddNode(ast::NodeKind::kAsg, {v1, n1});
  auto v2 = tree.AddVar("x");
  auto n2 = tree.AddNum(4 + variant);
  ast::NodeId inner;
  if (variant % 2 == 0) {
    inner = tree.AddNode(ast::NodeKind::kAdd, {v2, n2});
  } else {
    inner = tree.AddNode(ast::NodeKind::kMul, {v2, n2});
  }
  auto ret = tree.AddNode(ast::NodeKind::kReturn, {inner});
  auto block = tree.AddNode(ast::NodeKind::kBlock, {asg, ret});
  tree.set_root(block);
  return tree;
}

FunctionFeature MakeQuery(int variant, int callees) {
  FunctionFeature f;
  f.name = "query" + std::to_string(variant);
  f.tree = AsteriaModel::Preprocess(SmallTree(variant));
  f.callee_count = callees;
  return f;
}

AsteriaConfig SmallConfig(SiameseHead head = SiameseHead::kClassification) {
  AsteriaConfig config;
  config.siamese.encoder.embedding_dim = 8;
  config.siamese.encoder.hidden_dim = 8;
  config.siamese.head = head;
  return config;
}

// Fills the index with `n` synthetic (but finite, well-spread) encodings
// via AddEncoded — no per-entry model evaluation, so tests can afford
// corpora large enough to arm the prefilter (>= 2048 entries). `callee_of`
// maps the entry number to its callee count.
template <typename CalleeFn>
void FillSynthetic(SearchIndex* index, const AsteriaModel& model, int n,
                   CalleeFn&& callee_of) {
  const int h = model.config().siamese.encoder.hidden_dim;
  util::Rng rng(0xa57e41a5eedULL);
  for (int i = 0; i < n; ++i) {
    nn::Matrix enc(h, 1);
    for (int r = 0; r < h; ++r) {
      enc(r, 0) = static_cast<double>(rng.NextBounded(2000)) / 1000.0 - 1.0;
    }
    ASSERT_GE(index->AddEncoded("fn" + std::to_string(i), enc, callee_of(i)),
              0);
  }
}

// Bitwise hit-list equality: same entries, same order, same score bits.
void ExpectSameHits(const std::vector<SearchHit>& got,
                    const std::vector<SearchHit>& want,
                    const std::string& label) {
  ASSERT_EQ(got.size(), want.size()) << label;
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].index, want[i].index) << label << " hit " << i;
    EXPECT_EQ(got[i].name, want[i].name) << label << " hit " << i;
    // Bitwise, not approximate: the pruned/blocked sweep must replay the
    // exact reference arithmetic.
    EXPECT_EQ(got[i].score, want[i].score) << label << " hit " << i;
  }
}

// Runs the full differential battery for one index + query set: TopK and
// AboveThreshold against their references, batch against single, at thread
// counts 1, 2, and 8.
void RunDifferential(SearchIndex* index,
                     const std::vector<FunctionFeature>& queries, int k,
                     double threshold, const std::string& label) {
  // References are computed once (they are thread-count invariant too, but
  // one fixed configuration keeps the oracle simple).
  index->set_threads(1);
  std::vector<std::vector<SearchHit>> want_topk, want_above;
  for (const FunctionFeature& q : queries) {
    want_topk.push_back(index->TopKReference(q, k));
    want_above.push_back(index->AboveThresholdReference(q, threshold));
  }
  for (int threads : {1, 2, 8}) {
    index->set_threads(threads);
    const std::string tag = label + " threads=" + std::to_string(threads);
    std::vector<const FunctionFeature*> ptrs;
    for (const FunctionFeature& q : queries) ptrs.push_back(&q);
    const std::vector<int> ks(queries.size(), k);
    const std::vector<double> thresholds(queries.size(), threshold);
    const auto got_topk_batch = index->TopKBatch(ptrs, ks);
    const auto got_above_batch = index->AboveThresholdBatch(ptrs, thresholds);
    for (std::size_t i = 0; i < queries.size(); ++i) {
      const std::string qtag = tag + " query=" + std::to_string(i);
      ExpectSameHits(index->TopK(queries[i], k), want_topk[i],
                     qtag + " topk");
      ExpectSameHits(got_topk_batch[i], want_topk[i], qtag + " topk-batch");
      ExpectSameHits(index->AboveThreshold(queries[i], threshold),
                     want_above[i], qtag + " above");
      ExpectSameHits(got_above_batch[i], want_above[i],
                     qtag + " above-batch");
    }
  }
}

TEST(SearchIndexTest, EdgeCases) {
  const AsteriaConfig config = SmallConfig();
  AsteriaModel model(config);
  SearchIndex index(model);
  const FunctionFeature query = MakeQuery(0, 1);

  // Empty index: every path returns empty.
  EXPECT_TRUE(index.TopK(query, 5).empty());
  EXPECT_TRUE(index.TopKReference(query, 5).empty());
  EXPECT_TRUE(index.AboveThreshold(query, 0.0).empty());
  std::vector<const FunctionFeature*> one{&query};
  EXPECT_TRUE(index.TopKBatch(one, {5})[0].empty());
  EXPECT_TRUE(index.AboveThresholdBatch(one, {0.0})[0].empty());

  FillSynthetic(&index, model, 10, [](int i) { return i; });

  // k = 0 and negative k: empty, not a crash.
  EXPECT_TRUE(index.TopK(query, 0).empty());
  EXPECT_TRUE(index.TopK(query, -3).empty());
  EXPECT_TRUE(index.TopKBatch(one, {0})[0].empty());

  // k > size clips to size.
  EXPECT_EQ(index.TopK(query, 100).size(), 10u);
  EXPECT_EQ(index.TopKBatch(one, {100})[0].size(), 10u);

  // A threshold of 0.0 keeps everything (scores are non-negative); an
  // impossible threshold keeps nothing.
  EXPECT_EQ(index.AboveThreshold(query, 0.0).size(), 10u);
  EXPECT_TRUE(index.AboveThreshold(query, 2.0).empty());

  // Mixed batch: per-query k values are honored independently.
  const FunctionFeature query2 = MakeQuery(1, 5);
  std::vector<const FunctionFeature*> two{&query, &query2};
  const auto mixed = index.TopKBatch(two, {0, 3});
  EXPECT_TRUE(mixed[0].empty());
  EXPECT_EQ(mixed[1].size(), 3u);
}

TEST(SearchIndexTest, IdenticalScoresTiebreakByInsertionIndex) {
  const AsteriaConfig config = SmallConfig();
  AsteriaModel model(config);
  SearchIndex index(model);
  // Identical encodings and callee counts: every entry scores identically,
  // so the strict total order must fall back to insertion index.
  const int h = config.siamese.encoder.hidden_dim;
  nn::Matrix enc(h, 1);
  for (int r = 0; r < h; ++r) enc(r, 0) = 0.25 * (r + 1);
  for (int i = 0; i < 12; ++i) {
    ASSERT_GE(index.AddEncoded("clone" + std::to_string(i), enc, 2), 0);
  }
  const FunctionFeature query = MakeQuery(0, 2);
  const auto top = index.TopK(query, 5);
  ASSERT_EQ(top.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(top[static_cast<std::size_t>(i)].index, i);
    EXPECT_EQ(top[static_cast<std::size_t>(i)].score, top[0].score);
  }
  ExpectSameHits(top, index.TopKReference(query, 5), "all-identical");
}

// Adversarial distribution 1: every entry has the same callee count — the
// side index is a single giant bucket, seeds and the distance cut are
// useless, and the sweep must degrade gracefully to scoring everything.
TEST(SearchIndexTest, PrefilterParityAllEqualCallees) {
  const AsteriaConfig config = SmallConfig();
  AsteriaModel model(config);
  SearchIndex index(model);
  FillSynthetic(&index, model, 2500, [](int) { return 7; });
  const std::vector<FunctionFeature> queries{MakeQuery(0, 7), MakeQuery(1, 0),
                                             MakeQuery(2, 1000)};
  RunDifferential(&index, queries, 10, 0.4, "all-equal");
}

// Adversarial distribution 2: extreme spread — callee counts span the full
// int range, so e^{-|dC|} underflows for almost every pair and the prune is
// maximally aggressive. Exactness must survive the aggression.
TEST(SearchIndexTest, PrefilterParityExtremeSpread) {
  const AsteriaConfig config = SmallConfig();
  AsteriaModel model(config);
  SearchIndex index(model);
  FillSynthetic(&index, model, 2500, [](int i) {
    switch (i % 4) {
      case 0:
        return i % 50;                 // a near-query cluster
      case 1:
        return 1000 + i % 97;          // a mid cluster
      case 2:
        return 2000000000 - (i % 13);  // near INT_MAX
      default:
        return 0;
    }
  });
  const std::vector<FunctionFeature> queries{
      MakeQuery(0, 25), MakeQuery(1, 2000000000), MakeQuery(2, 1040)};
  RunDifferential(&index, queries, 10, 0.3, "extreme-spread");
}

// Uniformly spread counts with a corpus large enough to arm the prefilter:
// the main regression test that the pruned sweep equals brute force.
TEST(SearchIndexTest, PrunedSweepMatchesReferenceUniformCallees) {
  const AsteriaConfig config = SmallConfig();
  AsteriaModel model(config);
  SearchIndex index(model);
  FillSynthetic(&index, model, 3000, [](int i) { return i % 64; });
  const std::vector<FunctionFeature> queries{MakeQuery(0, 10), MakeQuery(1, 63),
                                             MakeQuery(2, 0)};
  RunDifferential(&index, queries, 25, 0.5, "uniform");
  // k above the prune cap (kMaxPruneK) still matches: the sweep falls back
  // to scoring everything.
  index.set_threads(2);
  const FunctionFeature big = MakeQuery(3, 31);
  ExpectSameHits(index.TopK(big, 600), index.TopKReference(big, 600),
                 "uniform k=600");
}

// Regression head: M is a rescaled cosine that can exceed 1.0 by rounding
// ulps, which is exactly what the prune slack exists for.
TEST(SearchIndexTest, RegressionHeadParity) {
  const AsteriaConfig config = SmallConfig(SiameseHead::kRegression);
  AsteriaModel model(config);
  SearchIndex index(model);
  FillSynthetic(&index, model, 2200, [](int i) { return i % 16; });
  const std::vector<FunctionFeature> queries{MakeQuery(0, 8), MakeQuery(1, 15)};
  RunDifferential(&index, queries, 12, 0.6, "regression");
}

// Sharded (MANI) index: two shards whose concatenation equals the
// monolithic index must produce bitwise-identical search results.
TEST(SearchIndexTest, ShardedIndexMatchesMonolithic) {
  const AsteriaConfig config = SmallConfig();
  AsteriaModel model(config);

  SearchIndex mono(model);
  FillSynthetic(&mono, model, 2400, [](int i) { return (i * 7) % 48; });

  // Rebuild the same entries as two shard snapshots plus a manifest.
  const std::string dir = TempPath("search_index_sharded/");
  std::remove((dir + "shard0.idx").c_str());
  std::remove((dir + "shard1.idx").c_str());
  std::remove((dir + store::kManifestFileName).c_str());
  ASSERT_EQ(std::system(("mkdir -p " + dir).c_str()), 0);
  const int half = mono.size() / 2;
  std::string error;
  {
    SearchIndex shard(model);
    for (int i = 0; i < half; ++i) {
      ASSERT_GE(shard.AddEncoded(mono.name(i), mono.encoding(i),
                                 mono.callee_count(i)),
                0);
    }
    ASSERT_TRUE(shard.Save(dir + "shard0.idx", &error)) << error;
  }
  {
    SearchIndex shard(model);
    for (int i = half; i < mono.size(); ++i) {
      ASSERT_GE(shard.AddEncoded(mono.name(i), mono.encoding(i),
                                 mono.callee_count(i)),
                0);
    }
    ASSERT_TRUE(shard.Save(dir + "shard1.idx", &error)) << error;
  }
  store::ShardManifest manifest;
  manifest.model_fingerprint = model.WeightsFingerprint();
  manifest.sequence = 1;
  store::ShardRecord rec0, rec1;
  rec0.file = "shard0.idx";
  rec0.entries = static_cast<std::uint64_t>(half);
  rec1.file = "shard1.idx";
  rec1.entries = static_cast<std::uint64_t>(mono.size() - half);
  manifest.shards = {rec0, rec1};
  ASSERT_TRUE(store::SaveManifest(manifest, dir + store::kManifestFileName,
                                  &error))
      << error;

  SearchIndex sharded(model);
  ASSERT_TRUE(sharded.Open(dir + store::kManifestFileName, &error)) << error;
  ASSERT_EQ(sharded.size(), mono.size());

  const std::vector<FunctionFeature> queries{MakeQuery(0, 20), MakeQuery(1, 3)};
  // Sharded results differential against both its own reference and the
  // monolithic pruned path.
  RunDifferential(&sharded, queries, 15, 0.45, "sharded");
  for (int threads : {1, 2, 8}) {
    mono.set_threads(threads);
    sharded.set_threads(threads);
    for (const FunctionFeature& q : queries) {
      ExpectSameHits(sharded.TopK(q, 15), mono.TopK(q, 15),
                     "sharded-vs-mono threads=" + std::to_string(threads));
    }
  }
}

// Snapshot round trip of a packed index: save, load, and get bitwise the
// same encodings and search results.
TEST(SearchIndexTest, SnapshotRoundTripPreservesPackedResults) {
  const AsteriaConfig config = SmallConfig();
  AsteriaModel model(config);
  SearchIndex index(model);
  FillSynthetic(&index, model, 2100, [](int i) { return i % 32; });
  const std::string path = TempPath("search_index_packed.idx");
  std::string error;
  ASSERT_TRUE(index.Save(path, &error)) << error;

  SearchIndex loaded(model);
  ASSERT_TRUE(loaded.Load(path, &error)) << error;
  ASSERT_EQ(loaded.size(), index.size());
  for (int i : {0, 1, 1024, 2099}) {
    const nn::Matrix a = index.encoding(i);
    const nn::Matrix b = loaded.encoding(i);
    for (int r = 0; r < a.rows(); ++r) EXPECT_EQ(a(r, 0), b(r, 0));
  }
  const FunctionFeature query = MakeQuery(2, 11);
  ExpectSameHits(loaded.TopK(query, 20), index.TopK(query, 20), "round-trip");
  ExpectSameHits(loaded.TopK(query, 20), index.TopKReference(query, 20),
                 "round-trip-vs-reference");
}

TEST(SearchIndexTest, AddEncodedRejectsBadEncodings) {
  const AsteriaConfig config = SmallConfig();
  AsteriaModel model(config);
  SearchIndex index(model);
  const int h = config.siamese.encoder.hidden_dim;
  nn::Matrix wrong_shape(h + 1, 1);
  EXPECT_EQ(index.AddEncoded("bad-shape", wrong_shape, 0), -1);
  nn::Matrix non_finite(h, 1);
  non_finite(0, 0) = std::nan("");
  EXPECT_EQ(index.AddEncoded("bad-nan", non_finite, 0), -1);
  EXPECT_EQ(index.size(), 0);
  nn::Matrix good(h, 1);
  EXPECT_EQ(index.AddEncoded("good", good, 0), 0);
  EXPECT_EQ(index.size(), 1);
}

}  // namespace
}  // namespace asteria::core
