// binary module tests: ISA specs, VM execution semantics (hand-assembled
// programs), module encode/decode robustness (fuzzed), and disassembly.
#include <gtest/gtest.h>

#include "binary/disasm.h"
#include "binary/module.h"
#include "binary/vm.h"
#include "util/rng.h"

namespace asteria::binary {
namespace {

using minic::ArgValue;

TEST(IsaSpec, FourDistinctIsas) {
  EXPECT_EQ(IsaFromName("x86"), Isa::kX86);
  EXPECT_EQ(IsaFromName("PPC"), Isa::kPpc);
  EXPECT_EQ(IsaFromName("mips"), Isa::kIsaCount);
  // Register-starved x86, big PPC file; both leave room for 3 scratches.
  EXPECT_LT(GetIsaSpec(Isa::kX86).allocatable_registers,
            GetIsaSpec(Isa::kX64).allocatable_registers);
  for (int i = 0; i < kNumIsas; ++i) {
    EXPECT_LE(GetIsaSpec(static_cast<Isa>(i)).allocatable_registers, 28);
  }
  // Exactly one ISA has csel; exactly one strength-reduces multiplies.
  int csel = 0, sr = 0;
  for (int i = 0; i < kNumIsas; ++i) {
    csel += GetIsaSpec(static_cast<Isa>(i)).has_csel;
    sr += GetIsaSpec(static_cast<Isa>(i)).strength_reduce_mul;
  }
  EXPECT_EQ(csel, 1);
  EXPECT_EQ(sr, 1);
}

TEST(Cond, NegationIsInvolution) {
  for (int c = 0; c < 6; ++c) {
    const Cond cond = static_cast<Cond>(c);
    EXPECT_EQ(NegateCond(NegateCond(cond)), cond);
    EXPECT_NE(NegateCond(cond), cond);
  }
}

// Hand-assembled: f(a, b) = a * 2 + b.
BinModule HandModule() {
  BinModule module;
  module.isa = Isa::kArm;
  module.name = "hand";
  BinFunction fn;
  fn.name = "f";
  fn.num_params = 2;
  fn.param_is_array = {0, 0};
  fn.frame_words = 2;
  using I = Instruction;
  fn.code.push_back(I::Make(Opcode::kLoadI, 1, kFramePointerReg, 0, 0));
  fn.code.push_back(I::Make(Opcode::kLoadI, 2, kFramePointerReg, 0, 1));
  fn.code.push_back(I::Make(Opcode::kMulI, 3, 1, 0, 2));
  fn.code.push_back(I::Make(Opcode::kAdd, 0, 3, 2));
  fn.code.push_back(I::Make(Opcode::kRet, 0));
  module.functions.push_back(std::move(fn));
  return module;
}

TEST(Vm, ExecutesHandAssembledFunction) {
  BinModule module = HandModule();
  Vm vm(module);
  const auto result =
      vm.Call("f", {ArgValue::Scalar(21), ArgValue::Scalar(5)});
  ASSERT_TRUE(result.ok) << result.trap;
  EXPECT_EQ(result.value, 47);
}

TEST(Vm, TrapsOnBadPc) {
  BinModule module = HandModule();
  module.functions[0].code.push_back(
      Instruction::Make(Opcode::kBr, 0, 0, 0, 999));
  // Remove the ret so the branch is reachable? Easier: retarget the ret.
  module.functions[0].code[4] = Instruction::Make(Opcode::kBr, 0, 0, 0, 999);
  Vm vm(module);
  const auto result = vm.Call("f", {ArgValue::Scalar(1), ArgValue::Scalar(2)});
  EXPECT_FALSE(result.ok);
}

TEST(Vm, TrapsOnStepLimit) {
  BinModule module;
  module.isa = Isa::kX86;
  BinFunction fn;
  fn.name = "spin";
  fn.frame_words = 0;
  fn.code.push_back(Instruction::Make(Opcode::kBr, 0, 0, 0, 0));  // self loop
  module.functions.push_back(std::move(fn));
  Vm::Options options;
  options.max_steps = 1000;
  Vm vm(module, options);
  const auto result = vm.Call("spin", {});
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.trap.find("step limit"), std::string::npos);
}

TEST(Vm, TrapsOnMemoryOutOfBounds) {
  BinModule module;
  module.isa = Isa::kX86;
  BinFunction fn;
  fn.name = "oob";
  fn.frame_words = 0;
  fn.code.push_back(Instruction::Make(Opcode::kMovImm, 1, 0, 0, -5000));
  fn.code.push_back(Instruction::Make(Opcode::kLoadI, 0, 1, 0, 0));
  fn.code.push_back(Instruction::Make(Opcode::kRet, 0));
  module.functions.push_back(std::move(fn));
  Vm vm(module);
  const auto result = vm.Call("oob", {});
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.trap.find("out of bounds"), std::string::npos);
}

TEST(Vm, TrapsOnDeepRecursion) {
  BinModule module;
  module.isa = Isa::kPpc;
  BinFunction fn;
  fn.name = "rec";
  fn.num_params = 0;
  fn.frame_words = 0;
  fn.code.push_back(Instruction::Make(Opcode::kCall, 0, 0, 0, 0));
  fn.code.push_back(Instruction::Make(Opcode::kRet, 0));
  module.functions.push_back(std::move(fn));
  Vm vm(module);
  const auto result = vm.Call("rec", {});
  EXPECT_FALSE(result.ok);
}

TEST(Vm, StringArgumentsMaterializeInRodata) {
  // f(s) = s[0] + s[1] for a string-table argument.
  BinModule module;
  module.isa = Isa::kX64;
  module.strings = {"AB"};
  BinFunction fn;
  fn.name = "f";
  fn.num_params = 0;
  fn.frame_words = 0;
  using I = Instruction;
  fn.code.push_back(I::Make(Opcode::kMovStr, 1, 0, 0, 0));
  fn.code.push_back(I::Make(Opcode::kLoadI, 2, 1, 0, 0));
  fn.code.push_back(I::Make(Opcode::kLoadI, 3, 1, 0, 1));
  fn.code.push_back(I::Make(Opcode::kAdd, 0, 2, 3));
  fn.code.push_back(I::Make(Opcode::kRet, 0));
  module.functions.push_back(std::move(fn));
  Vm vm(module);
  const auto result = vm.Call("f", {});
  ASSERT_TRUE(result.ok) << result.trap;
  EXPECT_EQ(result.value, 'A' + 'B');
}

TEST(Module, StripSymbolsProducesSubNames) {
  BinModule module = HandModule();
  module.StripSymbols();
  EXPECT_EQ(module.functions[0].name.rfind("sub_", 0), 0u);
}

TEST(Module, EncodeDecodeRoundTrip) {
  BinModule module = HandModule();
  module.strings = {"hello", "world"};
  JumpTable table;
  table.base = 3;
  table.targets = {0, 1, 2};
  table.default_target = 4;
  module.functions[0].jump_tables.push_back(table);
  const auto blob = module.Encode();
  const auto decoded = BinModule::Decode(blob);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->name, "hand");
  EXPECT_EQ(decoded->strings, module.strings);
  ASSERT_EQ(decoded->functions.size(), 1u);
  EXPECT_EQ(decoded->functions[0].code.size(),
            module.functions[0].code.size());
  EXPECT_EQ(decoded->functions[0].jump_tables[0].targets, table.targets);
}

TEST(Module, DecodeRejectsBitflipsMostly) {
  // Fuzz: single-byte corruption must never crash, and either fails to
  // decode or yields a module with a sane shape.
  BinModule module = HandModule();
  const auto blob = module.Encode();
  util::Rng rng(13);
  for (int trial = 0; trial < 300; ++trial) {
    auto corrupted = blob;
    corrupted[rng.NextBounded(corrupted.size())] ^=
        static_cast<std::uint8_t>(1 + rng.NextBounded(255));
    const auto decoded = BinModule::Decode(corrupted);
    if (decoded.has_value()) {
      EXPECT_LE(decoded->functions.size(), 16u);
    }
  }
}

TEST(Module, DecodeRejectsTruncation) {
  BinModule module = HandModule();
  const auto blob = module.Encode();
  for (std::size_t cut = 0; cut < blob.size(); cut += 3) {
    std::vector<std::uint8_t> truncated(blob.begin(),
                                        blob.begin() + static_cast<std::ptrdiff_t>(cut));
    EXPECT_FALSE(BinModule::Decode(truncated).has_value()) << cut;
  }
}

TEST(Disasm, RendersIsaFlavouredRegisters) {
  const Instruction insn = Instruction::Make(Opcode::kAdd, 0, 1, 2);
  EXPECT_NE(DisasmInstruction(Isa::kX86, insn).find("e0"), std::string::npos);
  EXPECT_NE(DisasmInstruction(Isa::kArm, insn).find("r0"), std::string::npos);
  EXPECT_NE(DisasmInstruction(Isa::kPpc, insn).find("g0"), std::string::npos);
}

TEST(Disasm, RendersWholeModuleWithJumpTables) {
  BinModule module = HandModule();
  JumpTable table;
  table.base = 0;
  table.targets = {0, 2};
  table.default_target = 4;
  module.functions[0].jump_tables.push_back(table);
  const std::string text = DisasmModule(module);
  EXPECT_NE(text.find("hand"), std::string::npos);
  EXPECT_NE(text.find("table#0"), std::string::npos);
  EXPECT_NE(text.find("muli"), std::string::npos);
}

TEST(Branching, IsBranchAndTerminatorClassification) {
  EXPECT_TRUE(IsBranch(Instruction::Make(Opcode::kBr)));
  EXPECT_TRUE(IsBranch(Instruction::Make(Opcode::kBrCond)));
  EXPECT_TRUE(IsBranch(Instruction::Make(Opcode::kRet)));
  EXPECT_FALSE(IsBranch(Instruction::Make(Opcode::kAdd)));
  EXPECT_TRUE(IsTerminator(Instruction::Make(Opcode::kBr)));
  EXPECT_FALSE(IsTerminator(Instruction::Make(Opcode::kBrCond)));
  EXPECT_TRUE(IsCall(Instruction::Make(Opcode::kCall)));
}

}  // namespace
}  // namespace asteria::binary
