// Firmware tests: pack/unpack round trip, corruption detection, vuln
// library validity, corpus construction with ground truth, and an
// end-to-end search smoke test with a lightly trained model.
#include <gtest/gtest.h>

#include "compiler/compile.h"
#include "decompiler/decompile.h"
#include "firmware/image.h"
#include "firmware/search.h"
#include "firmware/vulnlib.h"
#include "binary/vm.h"
#include "minic/interp.h"
#include "minic/parser.h"
#include "minic/sema.h"

namespace asteria::firmware {
namespace {

binary::BinModule SmallModule() {
  minic::Program program;
  std::string error;
  EXPECT_TRUE(minic::Parse(
      "int f(int a) { return a * 2 + 1; } int g(int a) { return f(a) - 3; }",
      &program, &error))
      << error;
  EXPECT_TRUE(minic::Check(program, &error)) << error;
  auto compiled =
      compiler::CompileProgram(program, binary::Isa::kArm, "libsmall");
  EXPECT_TRUE(compiled.ok);
  return std::move(compiled.module);
}

TEST(Image, PackUnpackRoundTrip) {
  FirmwareImage image;
  image.vendor = "NetGear";
  image.model = "R7000";
  image.version = "v1.3";
  image.modules.push_back(SmallModule());
  const auto blob = Pack(image);
  auto unpacked = Unpack(blob);
  ASSERT_TRUE(unpacked.has_value());
  EXPECT_EQ(unpacked->vendor, "NetGear");
  EXPECT_EQ(unpacked->model, "R7000");
  EXPECT_EQ(unpacked->version, "v1.3");
  ASSERT_EQ(unpacked->modules.size(), 1u);
  EXPECT_EQ(unpacked->modules[0].functions.size(), 2u);
  EXPECT_EQ(unpacked->modules[0].isa, binary::Isa::kArm);
}

TEST(Image, DetectsCorruption) {
  FirmwareImage image;
  image.vendor = "Dlink";
  image.modules.push_back(SmallModule());
  auto blob = Pack(image);
  blob[blob.size() / 2] ^= 0xFF;
  EXPECT_FALSE(Unpack(blob).has_value());
}

TEST(Image, RejectsTruncationAndGarbage) {
  FirmwareImage image;
  image.vendor = "Schneider";
  auto blob = Pack(image);
  blob.resize(blob.size() - 2);
  EXPECT_FALSE(Unpack(blob).has_value());
  EXPECT_FALSE(Unpack({0x12, 0x34}).has_value());
}

TEST(VulnLibrary, AllSourcesCompileOnEveryIsa) {
  ASSERT_EQ(VulnLibrary().size(), 7u);  // Table IV has seven CVEs
  for (const VulnSpec& spec : VulnLibrary()) {
    for (const std::string& source :
         {spec.vulnerable_source, spec.patched_source}) {
      minic::Program program;
      std::string error;
      ASSERT_TRUE(minic::Parse(source, &program, &error))
          << spec.cve << ": " << error;
      ASSERT_TRUE(minic::Check(program, &error)) << spec.cve << ": " << error;
      EXPECT_GE(program.FindFunction(spec.function), 0) << spec.cve;
      for (int isa = 0; isa < binary::kNumIsas; ++isa) {
        auto compiled = compiler::CompileProgram(
            program, static_cast<binary::Isa>(isa), spec.software);
        EXPECT_TRUE(compiled.ok) << spec.cve << ": " << compiled.error;
      }
    }
  }
}

TEST(VulnLibrary, FunctionsExecuteIdenticallyOnAllIsas) {
  // The CVE functions are not just compiled: run each (vulnerable and
  // patched) in the interpreter and on all four VMs with representative
  // arguments and require exact agreement.
  util::Rng rng(31);
  for (const VulnSpec& spec : VulnLibrary()) {
    for (const std::string& source :
         {spec.vulnerable_source, spec.patched_source}) {
      minic::Program program;
      std::string error;
      ASSERT_TRUE(minic::Parse(source, &program, &error)) << spec.cve;
      ASSERT_TRUE(minic::Check(program, &error)) << spec.cve;
      const int fn_index = program.FindFunction(spec.function);
      ASSERT_GE(fn_index, 0);
      const minic::Function& fn =
          program.functions()[static_cast<std::size_t>(fn_index)];
      std::vector<minic::ArgValue> args;
      for (const minic::Param& param : fn.params) {
        if (param.is_array) {
          std::vector<std::int64_t> data(16);
          for (auto& x : data) x = rng.NextInt(1, 120);
          // String-like loops scan through the & 7 mask window: place a
          // terminator inside it so every variant halts.
          data[7] = 0;
          data.back() = 0;
          args.push_back(minic::ArgValue::Array(std::move(data)));
        } else {
          args.push_back(minic::ArgValue::Scalar(rng.NextInt(0, 32)));
        }
      }
      minic::Interpreter interp(program);
      const auto expected = interp.Call(spec.function, args);
      ASSERT_TRUE(expected.ok) << spec.cve << ": " << expected.trap;
      for (int isa = 0; isa < binary::kNumIsas; ++isa) {
        auto compiled = compiler::CompileProgram(
            program, static_cast<binary::Isa>(isa), spec.software);
        ASSERT_TRUE(compiled.ok);
        binary::Vm vm(compiled.module);
        const auto actual = vm.Call(spec.function, args);
        ASSERT_TRUE(actual.ok)
            << spec.cve << "/" << binary::IsaName(static_cast<binary::Isa>(isa))
            << ": " << actual.trap;
        EXPECT_EQ(actual.value, expected.value)
            << spec.cve << "/" << binary::IsaName(static_cast<binary::Isa>(isa));
        EXPECT_EQ(actual.arrays, expected.arrays) << spec.cve;
      }
    }
  }
}

TEST(VulnLibrary, VulnerableAndPatchedDiffer) {
  for (const VulnSpec& spec : VulnLibrary()) {
    EXPECT_NE(spec.vulnerable_source, spec.patched_source) << spec.cve;
    EXPECT_NE(spec.vulnerable_version, spec.patched_version) << spec.cve;
  }
}

TEST(FirmwareCorpus, BuildsWithGroundTruth) {
  FirmwareCorpusConfig config;
  config.images = 8;
  config.seed = 7;
  FirmwareCorpus corpus = BuildFirmwareCorpus(config);
  EXPECT_EQ(corpus.unpack_failures, 0);
  EXPECT_EQ(corpus.images.size(), 8u);
  EXPECT_GT(corpus.functions.size(), 30u);
  int planted = 0;
  for (const FirmwareFunction& fn : corpus.functions) {
    EXPECT_EQ(fn.symbol.rfind("sub_", 0), 0u) << "symbols must be stripped";
    if (!fn.truth_cve.empty()) ++planted;
  }
  EXPECT_GT(planted, 0);
}

TEST(VulnSearch, UntrainedModelRunsEndToEnd) {
  FirmwareCorpusConfig config;
  config.images = 5;
  config.seed = 13;
  FirmwareCorpus corpus = BuildFirmwareCorpus(config);
  core::AsteriaConfig model_config;
  model_config.siamese.encoder.embedding_dim = 8;
  model_config.siamese.encoder.hidden_dim = 8;
  core::AsteriaModel model(model_config);
  VulnSearchResult result = RunVulnSearch(model, corpus, /*threshold=*/0.5);
  EXPECT_EQ(result.per_cve.size(), 7u);
  // Structural sanity: candidates >= confirmed for every CVE.
  for (const CveSearchResult& row : result.per_cve) {
    EXPECT_GE(row.candidates, row.confirmed);
  }
}

TEST(VulnSearch, TrainedModelFindsPlantedFunction) {
  // Train the model to recognize the CVE functions across ISAs, then
  // verify the search finds the planted instances.
  FirmwareCorpusConfig config;
  config.images = 10;
  config.seed = 3;
  config.software_probability = 1.0;
  config.vulnerable_probability = 1.0;  // every shipped software vulnerable
  FirmwareCorpus corpus = BuildFirmwareCorpus(config);

  core::AsteriaConfig model_config;
  model_config.siamese.encoder.embedding_dim = 8;
  model_config.siamese.encoder.hidden_dim = 8;
  core::AsteriaModel model(model_config);

  // Training set: CVE functions compiled on two ISAs (positive pairs) and
  // CVE-vs-other-CVE (negative pairs).
  std::vector<ast::BinaryAst> queries;
  for (const VulnSpec& spec : VulnLibrary()) {
    for (int isa : {0, 2}) {
      minic::Program program;
      std::string error;
      ASSERT_TRUE(minic::Parse(spec.vulnerable_source, &program, &error));
      auto compiled = compiler::CompileProgram(
          program, static_cast<binary::Isa>(isa), spec.software);
      ASSERT_TRUE(compiled.ok);
      const int fn = compiled.module.FindFunction(spec.function);
      ASSERT_GE(fn, 0);
      auto decompiled = asteria::decompiler::DecompileFunction(compiled.module, fn);
      queries.push_back(ast::ToLeftChildRightSibling(decompiled.tree));
    }
  }
  for (int epoch = 0; epoch < 40; ++epoch) {
    for (std::size_t i = 0; i + 1 < queries.size(); i += 2) {
      model.TrainPair(queries[i], queries[i + 1], true);
      const std::size_t other = (i + 2) % queries.size();
      model.TrainPair(queries[i], queries[other + 1], false);
    }
  }
  VulnSearchResult result = RunVulnSearch(model, corpus, /*threshold=*/0.6);
  EXPECT_GT(result.total_confirmed, 0);
}

}  // namespace
}  // namespace asteria::firmware
