// Register allocation and liveness tests: physical-register bounds, spill
// generation under pressure, 2-operand fixups, and liveness interval sanity.
#include <gtest/gtest.h>

#include "binary/vm.h"
#include "compiler/compile.h"
#include "compiler/liveness.h"
#include "compiler/lower.h"
#include "compiler/regalloc.h"
#include "minic/interp.h"
#include "minic/parser.h"
#include "minic/sema.h"

namespace asteria::compiler {
namespace {

using binary::Isa;

minic::Program MustParse(const std::string& source) {
  minic::Program program;
  std::string error;
  EXPECT_TRUE(minic::Parse(source, &program, &error)) << error;
  EXPECT_TRUE(minic::Check(program, &error)) << error;
  return program;
}

// Many simultaneously live values to pressure any allocator.
const char* kPressureSource = R"(
  int f(int n) {
    int a = n + 1; int b = n + 2; int c = n + 3; int d = n + 4;
    int e = n + 5; int g = n + 6; int h = n + 7; int i = n + 8;
    int j = n + 9; int k = n + 10;
    int s = a * b + c * d + e * g + h * i + j * k;
    return s + a + b + c + d + e + g + h + i + j + k;
  }
)";

TEST(Liveness, IntervalsCoverDefsAndUses) {
  minic::Program program = MustParse("int f(int a) { int b = a + 1; return b * a; }");
  IrProgram ir;
  std::string error;
  ASSERT_TRUE(LowerProgram(program, &ir, &error)) << error;
  const LivenessInfo liveness = ComputeLiveness(ir.functions[0]);
  const auto intervals = ComputeIntervals(ir.functions[0], liveness);
  ASSERT_FALSE(intervals.empty());
  for (const Interval& interval : intervals) {
    EXPECT_GE(interval.start, 0);
    EXPECT_GE(interval.end, interval.start);
    EXPECT_LT(interval.end, liveness.total_positions);
    EXPECT_NE(interval.vreg, kFpVReg);  // fp is pre-colored, never scanned
  }
  // Sorted by start.
  for (std::size_t i = 1; i < intervals.size(); ++i) {
    EXPECT_LE(intervals[i - 1].start, intervals[i].start);
  }
}

TEST(Liveness, LoopCarriedValueLiveAcrossLoop) {
  // `s` is defined before the loop and used inside and after: it must be
  // live-in to the loop body blocks.
  minic::Program program = MustParse(
      "int f(int n) { int s = 0; int i; for (i = 0; i < n; i++) { s += i; } return s; }");
  IrProgram ir;
  std::string error;
  ASSERT_TRUE(LowerProgram(program, &ir, &error)) << error;
  const IrFunction& fn = ir.functions[0];
  const LivenessInfo liveness = ComputeLiveness(fn);
  // At least one block has a nonempty live-in set (the loop-carried vregs).
  bool any_live_in = false;
  for (const auto& in : liveness.live_in) {
    for (char bit : in) any_live_in |= bit != 0;
  }
  EXPECT_TRUE(any_live_in);
}

TEST(RegAlloc, AllRegistersWithinBounds) {
  minic::Program program = MustParse(kPressureSource);
  for (int isa = 0; isa < binary::kNumIsas; ++isa) {
    auto compiled = CompileProgram(program, static_cast<Isa>(isa), "m");
    ASSERT_TRUE(compiled.ok) << compiled.error;
    const auto& spec = binary::GetIsaSpec(static_cast<Isa>(isa));
    for (const auto& insn : compiled.module.functions[0].code) {
      for (int reg : {static_cast<int>(insn.a), static_cast<int>(insn.b),
                      static_cast<int>(insn.c)}) {
        // Registers are either allocatable, scratch (28-30), or fp (31).
        EXPECT_TRUE(reg < spec.allocatable_registers ||
                    (reg >= kScratchB && reg <= binary::kFramePointerReg))
            << binary::IsaName(static_cast<Isa>(isa)) << " reg " << reg;
      }
    }
  }
}

TEST(RegAlloc, SpillsUnderPressureOnX86Only) {
  minic::Program program = MustParse(kPressureSource);
  IrProgram ir;
  std::string error;
  ASSERT_TRUE(LowerProgram(program, &ir, &error)) << error;
  IrFunction x86_fn = ir.functions[0];
  IrFunction ppc_fn = ir.functions[0];
  const auto x86_stats =
      AllocateRegisters(&x86_fn, binary::GetIsaSpec(Isa::kX86));
  const auto ppc_stats =
      AllocateRegisters(&ppc_fn, binary::GetIsaSpec(Isa::kPpc));
  EXPECT_GT(x86_stats.spilled_vregs, 0);  // 6 registers cannot hold 11 lives
  EXPECT_EQ(ppc_stats.spilled_vregs, 0);  // 28 registers can
  EXPECT_GT(x86_stats.fixup_moves, 0);    // 2-operand ISA
  EXPECT_EQ(ppc_stats.fixup_moves, 0);    // 3-operand ISA
}

TEST(RegAlloc, SpilledCodeStillComputesCorrectly) {
  minic::Program program = MustParse(kPressureSource);
  minic::Interpreter interp(program);
  const auto expected = interp.Call("f", {minic::ArgValue::Scalar(11)});
  ASSERT_TRUE(expected.ok);
  auto compiled = CompileProgram(program, Isa::kX86, "m");
  ASSERT_TRUE(compiled.ok);
  binary::Vm vm(compiled.module);
  const auto actual = vm.Call("f", {minic::ArgValue::Scalar(11)});
  ASSERT_TRUE(actual.ok) << actual.trap;
  EXPECT_EQ(actual.value, expected.value);
}

TEST(RegAlloc, FrameGrowsBySpillSlots) {
  minic::Program program = MustParse(kPressureSource);
  IrProgram ir;
  std::string error;
  ASSERT_TRUE(LowerProgram(program, &ir, &error)) << error;
  IrFunction fn = ir.functions[0];
  const int frame_before = fn.frame_words;
  const auto stats = AllocateRegisters(&fn, binary::GetIsaSpec(Isa::kX86));
  EXPECT_EQ(fn.frame_words, frame_before + stats.spilled_vregs);
}

}  // namespace
}  // namespace asteria::compiler
