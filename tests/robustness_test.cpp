// Fault-injection and corruption robustness tests (docs/ROBUSTNESS.md).
//
// Three contracts are pinned here:
//  1. Crash safety: every container write goes through temp-file + atomic
//     rename, so a simulated crash (store.crash failpoint) or any injected
//     I/O failure never leaves a file that opens as a valid container, and
//     never damages the previous snapshot.
//  2. Corruption tolerance: a byte-flipped or truncated artifact of any of
//     the four kinds (MODL/INDX/CORP/FENC) either loads cleanly or fails
//     cleanly with a descriptive error — it never crashes or commits
//     partial state. The sweep runs under ASan/UBSan via
//     scripts/check_sanitize.sh.
//  3. Fault isolation: one poisoned item (corpus function, encoding,
//     training pair) is skipped and counted in a PipelineReport; the batch
//     survives and the degraded results stay deterministic.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "binary/module.h"
#include "core/asteria.h"
#include "core/search_index.h"
#include "dataset/corpus.h"
#include "dataset/corpus_io.h"
#include "decompiler/decompile.h"
#include "decompiler/lifter.h"
#include "decompiler/machine_cfg.h"
#include "decompiler/structurer.h"
#include "firmware/search.h"
#include "nn/parameter.h"
#include "store/checkpoint.h"
#include "store/container.h"
#include "util/failpoint.h"
#include "util/pipeline_report.h"
#include "util/rng.h"

namespace asteria {
namespace {

using ::testing::TempDir;

std::string TempPath(const std::string& name) { return TempDir() + name; }

std::vector<std::uint8_t> ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>());
}

void WriteAll(const std::string& path, const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

bool FileExists(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  std::fclose(f);
  return true;
}

// Every test arms its own failpoints; make sure none leak across cases.
class RobustnessTest : public ::testing::Test {
 protected:
  void SetUp() override { util::ClearFailpoints(); }
  void TearDown() override { util::ClearFailpoints(); }
};

void Arm(const std::string& spec) {
  std::string error;
  ASSERT_TRUE(util::ConfigureFailpoints(spec, &error)) << error;
}

// ---------------------------------------------------------------------------
// Shared small fixtures

core::AsteriaConfig SmallModelConfig(std::uint64_t seed = 1) {
  core::AsteriaConfig config;
  config.siamese.encoder.embedding_dim = 8;
  config.siamese.encoder.hidden_dim = 8;
  config.seed = seed;
  return config;
}

ast::Ast SyntheticTree(int nodes, util::Rng& rng) {
  ast::Ast tree;
  std::vector<ast::NodeId> pool;
  pool.push_back(tree.AddVar("x"));
  while (tree.size() < nodes) {
    const auto kind = static_cast<ast::NodeKind>(
        rng.NextBounded(static_cast<std::uint64_t>(ast::kNumNodeKinds)));
    const int arity = static_cast<int>(rng.NextBounded(3));
    std::vector<ast::NodeId> children;
    for (int i = 0; i < arity && !pool.empty(); ++i) {
      children.push_back(pool.back());
      pool.pop_back();
    }
    pool.push_back(tree.AddNode(kind, std::move(children)));
  }
  tree.set_root(tree.AddNode(ast::NodeKind::kBlock, pool));
  return tree;
}

std::vector<core::FunctionFeature> SyntheticFeatures(int count,
                                                     std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<core::FunctionFeature> features;
  features.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    core::FunctionFeature feature;
    feature.name = "fn" + std::to_string(i);
    feature.tree = core::AsteriaModel::Preprocess(SyntheticTree(8, rng));
    feature.callee_count = static_cast<int>(rng.NextBounded(6));
    features.push_back(std::move(feature));
  }
  return features;
}

void FillStore(nn::ParameterStore* params, std::uint64_t seed) {
  util::Rng rng(seed);
  params->CreateXavier("w_left", 3, 4, rng);
  params->CreateXavier("b_out", 4, 1, rng);
}

firmware::FirmwareCorpusConfig TinyFirmwareConfig() {
  firmware::FirmwareCorpusConfig config;
  config.images = 4;
  config.seed = 7;
  config.filler_packages_per_image = 1;
  return config;
}

// ---------------------------------------------------------------------------
// 1. Crash safety and injected I/O failures

TEST_F(RobustnessTest, WriterOpenWriteRenameFailuresLeaveNoValidFile) {
  for (const char* point : {"store.open", "store.write", "store.rename"}) {
    util::ClearFailpoints();
    Arm(std::string(point) + "=always");
    const std::string path = TempPath(std::string("io_fail_") + point + ".bin");
    std::remove(path.c_str());

    store::ChunkBuilder chunk;
    chunk.PutString("payload");
    store::Writer writer;
    std::string error;
    bool ok = writer.Open(path, store::kKindModel, &error);
    if (ok) ok = writer.WriteChunk(store::FourCc('D', 'A', 'T', 'A'), chunk,
                                   &error);
    if (ok) ok = writer.Finish(&error);
    EXPECT_FALSE(ok) << point;
    EXPECT_FALSE(error.empty()) << point;
    // Neither the final path nor a stale temp may open as a container.
    EXPECT_FALSE(store::IsContainerFile(path)) << point;
    EXPECT_FALSE(FileExists(path)) << point;
  }
}

TEST_F(RobustnessTest, CrashFailpointKeepsPreviousSnapshotIntact) {
  const std::string path = TempPath("crash_snapshot.bin");
  std::string error;
  {
    store::ChunkBuilder chunk;
    chunk.PutU32(1);
    store::Writer writer;
    ASSERT_TRUE(writer.Open(path, store::kKindIndex, &error)) << error;
    ASSERT_TRUE(writer.WriteChunk(store::FourCc('D', 'A', 'T', 'A'), chunk,
                                  &error))
        << error;
    ASSERT_TRUE(writer.Finish(&error)) << error;
  }
  const std::vector<std::uint8_t> before = ReadAll(path);

  // Crash between "temp fully written" and "renamed over the snapshot".
  Arm("store.crash=once");
  {
    store::ChunkBuilder chunk;
    chunk.PutU32(2);
    store::Writer writer;
    ASSERT_TRUE(writer.Open(path, store::kKindIndex, &error)) << error;
    ASSERT_TRUE(writer.WriteChunk(store::FourCc('D', 'A', 'T', 'A'), chunk,
                                  &error))
        << error;
    EXPECT_FALSE(writer.Finish(&error));
    EXPECT_NE(error.find("crash"), std::string::npos) << error;
  }
  EXPECT_EQ(util::FailpointFireCount("store.crash"), 1u);
  // A real crash leaves the temp file behind; the snapshot is untouched,
  // byte for byte.
  EXPECT_TRUE(FileExists(path + ".tmp"));
  EXPECT_EQ(ReadAll(path), before);
  store::Reader reader;
  ASSERT_TRUE(reader.Open(path, store::kKindIndex, &error)) << error;
  std::remove((path + ".tmp").c_str());

  // After "recovery" (failpoint cleared) the same write goes through.
  util::ClearFailpoints();
  {
    store::ChunkBuilder chunk;
    chunk.PutU32(2);
    store::Writer writer;
    ASSERT_TRUE(writer.Open(path, store::kKindIndex, &error)) << error;
    ASSERT_TRUE(writer.WriteChunk(store::FourCc('D', 'A', 'T', 'A'), chunk,
                                  &error))
        << error;
    ASSERT_TRUE(writer.Finish(&error)) << error;
  }
  EXPECT_FALSE(FileExists(path + ".tmp"));
  EXPECT_NE(ReadAll(path), before);
}

TEST_F(RobustnessTest, ReaderFailpointsFailCleanly) {
  const std::string path = TempPath("read_fail.bin");
  std::string error;
  {
    store::ChunkBuilder chunk;
    chunk.PutU32(7);
    store::Writer writer;
    ASSERT_TRUE(writer.Open(path, store::kKindModel, &error)) << error;
    ASSERT_TRUE(writer.WriteChunk(store::FourCc('D', 'A', 'T', 'A'), chunk,
                                  &error))
        << error;
    ASSERT_TRUE(writer.Finish(&error)) << error;
  }
  Arm("store.read_open=always");
  store::Reader reader;
  EXPECT_FALSE(reader.Open(path, store::kKindModel, &error));

  util::ClearFailpoints();
  Arm("store.read=always");
  store::Reader reader2;
  ASSERT_TRUE(reader2.Open(path, store::kKindModel, &error)) << error;
  std::vector<std::uint8_t> payload;
  EXPECT_FALSE(reader2.ReadChunk(0, &payload, &error));
  EXPECT_FALSE(error.empty());
}

TEST_F(RobustnessTest, CheckpointSaveFailuresNeverClobberPrevious) {
  const std::string path = TempPath("ckpt_io_fail.bin");
  nn::ParameterStore params;
  FillStore(&params, 11);
  std::string error;
  ASSERT_TRUE(store::SaveModelCheckpoint(params, path, &error)) << error;
  const std::vector<std::uint8_t> before = ReadAll(path);

  for (const char* spec :
       {"store.open=always", "store.write=always", "store.rename=always",
        "store.crash=once"}) {
    util::ClearFailpoints();
    Arm(spec);
    error.clear();
    EXPECT_FALSE(store::SaveModelCheckpoint(params, path, &error)) << spec;
    EXPECT_FALSE(error.empty()) << spec;
    EXPECT_EQ(ReadAll(path), before) << spec;
    std::remove((path + ".tmp").c_str());
  }
  util::ClearFailpoints();
  nn::ParameterStore loaded;
  FillStore(&loaded, 99);
  ASSERT_TRUE(store::LoadModelCheckpoint(&loaded, path, &error)) << error;
}

TEST_F(RobustnessTest, CheckpointReadFailpointLeavesTargetUntouched) {
  const std::string path = TempPath("ckpt_read_fail.bin");
  nn::ParameterStore saved;
  FillStore(&saved, 11);
  std::string error;
  ASSERT_TRUE(store::SaveModelCheckpoint(saved, path, &error)) << error;

  nn::ParameterStore loaded;
  FillStore(&loaded, 99);
  const std::uint32_t before = store::WeightsFingerprint(loaded);
  Arm("store.read=always");
  EXPECT_FALSE(store::LoadModelCheckpoint(&loaded, path, &error));
  EXPECT_EQ(store::WeightsFingerprint(loaded), before);
}

TEST_F(RobustnessTest, LegacyParamsFailpointsCoverAllIoPaths) {
  const std::string path = TempPath("legacy_io_fail.params");
  nn::ParameterStore params;
  FillStore(&params, 11);
  ASSERT_TRUE(params.Save(path));
  const std::vector<std::uint8_t> before = ReadAll(path);

  for (const char* spec : {"params.open=always", "params.write=always",
                           "params.rename=always"}) {
    util::ClearFailpoints();
    Arm(spec);
    EXPECT_FALSE(params.Save(path)) << spec;
    EXPECT_EQ(ReadAll(path), before) << spec;
    std::remove((path + ".tmp").c_str());
  }

  util::ClearFailpoints();
  Arm("params.read=always");
  nn::ParameterStore loaded;
  FillStore(&loaded, 99);
  const std::uint32_t fingerprint = store::WeightsFingerprint(loaded);
  EXPECT_FALSE(loaded.Load(path));
  EXPECT_EQ(store::WeightsFingerprint(loaded), fingerprint);
}

TEST_F(RobustnessTest, NanCheckpointRefusedOnLoad) {
  const std::string path = TempPath("ckpt_nan.bin");
  nn::ParameterStore poisoned;
  FillStore(&poisoned, 11);
  poisoned.parameters()[0]->value[2] =
      std::numeric_limits<double>::quiet_NaN();
  std::string error;
  ASSERT_TRUE(store::SaveModelCheckpoint(poisoned, path, &error)) << error;

  nn::ParameterStore loaded;
  FillStore(&loaded, 99);
  const std::uint32_t before = store::WeightsFingerprint(loaded);
  EXPECT_FALSE(store::LoadModelCheckpoint(&loaded, path, &error));
  EXPECT_NE(error.find("non-finite"), std::string::npos) << error;
  EXPECT_EQ(store::WeightsFingerprint(loaded), before);
}

// ---------------------------------------------------------------------------
// 2. Corruption sweep: all four container kinds, byte flips + truncations

// Each artifact kind provides a writer (make a small valid file) and a
// loader ("true" = loaded cleanly). The sweep asserts the disjunction:
// loads cleanly or fails cleanly — anything else (crash, OOM, hang) is
// caught by the test runner / sanitizers.
struct ArtifactKind {
  const char* label;
  void (*write)(const std::string& path);
  bool (*load)(const std::string& path, std::string* error);
};

void WriteModelArtifact(const std::string& path) {
  nn::ParameterStore params;
  FillStore(&params, 11);
  std::string error;
  ASSERT_TRUE(store::SaveModelCheckpoint(params, path, &error)) << error;
}
bool LoadModelArtifact(const std::string& path, std::string* error) {
  nn::ParameterStore params;
  FillStore(&params, 99);
  return store::LoadModelCheckpoint(&params, path, error);
}

void WriteIndexArtifact(const std::string& path) {
  core::AsteriaModel model(SmallModelConfig());
  core::SearchIndex index(model);
  index.AddAll(SyntheticFeatures(3, 3));
  std::string error;
  ASSERT_TRUE(index.Save(path, &error)) << error;
}
bool LoadIndexArtifact(const std::string& path, std::string* error) {
  core::AsteriaModel model(SmallModelConfig());
  core::SearchIndex index(model);
  return index.Load(path, error);
}

dataset::CorpusConfig TinyCorpusConfig() {
  dataset::CorpusConfig config;
  config.packages = 1;
  config.seed = 777;
  return config;
}
void WriteCorpusArtifact(const std::string& path) {
  const dataset::CorpusConfig config = TinyCorpusConfig();
  const dataset::Corpus built = dataset::BuildCorpus(config);
  std::string error;
  ASSERT_TRUE(dataset::SaveCorpus(built, config, path, &error)) << error;
}
bool LoadCorpusArtifact(const std::string& path, std::string* error) {
  dataset::Corpus corpus;
  return dataset::LoadCorpus(&corpus, TinyCorpusConfig(), path, error);
}

void WriteEncodingsArtifact(const std::string& path) {
  core::AsteriaModel model(SmallModelConfig());
  firmware::FirmwareCorpus corpus;
  corpus.functions.resize(3);
  for (std::size_t i = 0; i < corpus.functions.size(); ++i) {
    corpus.functions[i].feature = SyntheticFeatures(1, 40 + i)[0];
  }
  const auto encodings = firmware::EncodeFirmwareCorpus(model, corpus);
  std::string error;
  ASSERT_TRUE(firmware::SaveFirmwareEncodings(encodings, model, path, &error))
      << error;
}
bool LoadEncodingsArtifact(const std::string& path, std::string* error) {
  core::AsteriaModel model(SmallModelConfig());
  std::vector<nn::Matrix> encodings;
  return firmware::LoadFirmwareEncodings(&encodings, model, 3, path, error);
}

constexpr ArtifactKind kArtifacts[] = {
    {"model", WriteModelArtifact, LoadModelArtifact},
    {"index", WriteIndexArtifact, LoadIndexArtifact},
    {"corpus", WriteCorpusArtifact, LoadCorpusArtifact},
    {"encodings", WriteEncodingsArtifact, LoadEncodingsArtifact},
};

TEST_F(RobustnessTest, ByteFlipSweepLoadsCleanlyOrFailsCleanly) {
  for (const ArtifactKind& kind : kArtifacts) {
    const std::string path =
        TempPath(std::string("sweep_flip_") + kind.label + ".bin");
    kind.write(path);
    const std::vector<std::uint8_t> pristine = ReadAll(path);
    ASSERT_GT(pristine.size(), 0u) << kind.label;

    // Flip one byte at a spread of offsets covering header, chunk headers,
    // and payload; every bit position gets exercised across the sweep.
    const std::size_t step =
        pristine.size() < 64 ? 1 : pristine.size() / 64;
    int clean_failures = 0;
    for (std::size_t offset = 0; offset < pristine.size(); offset += step) {
      std::vector<std::uint8_t> bytes = pristine;
      bytes[offset] ^= static_cast<std::uint8_t>(1u << (offset % 8));
      WriteAll(path, bytes);
      std::string error;
      if (!kind.load(path, &error)) {
        EXPECT_FALSE(error.empty())
            << kind.label << ": silent failure at offset " << offset;
        ++clean_failures;
      }
    }
    // CRCs make nearly every flip detectable; at minimum the sweep must
    // have seen real rejections (a sweep that "passes" by loading every
    // corrupt file would mean the checks are dead).
    EXPECT_GT(clean_failures, 0) << kind.label;

    WriteAll(path, pristine);
    std::string error;
    EXPECT_TRUE(kind.load(path, &error)) << kind.label << ": " << error;
  }
}

TEST_F(RobustnessTest, TruncationSweepLoadsCleanlyOrFailsCleanly) {
  for (const ArtifactKind& kind : kArtifacts) {
    const std::string path =
        TempPath(std::string("sweep_trunc_") + kind.label + ".bin");
    kind.write(path);
    const std::vector<std::uint8_t> pristine = ReadAll(path);
    ASSERT_GT(pristine.size(), 0u) << kind.label;

    const std::size_t step =
        pristine.size() < 32 ? 1 : pristine.size() / 32;
    for (std::size_t keep = 0; keep < pristine.size(); keep += step) {
      std::vector<std::uint8_t> bytes(pristine.begin(),
                                      pristine.begin() +
                                          static_cast<std::ptrdiff_t>(keep));
      WriteAll(path, bytes);
      std::string error;
      // A strict prefix can never be a valid artifact of these formats
      // (chunk table and CRCs cover the tail).
      EXPECT_FALSE(kind.load(path, &error))
          << kind.label << ": truncation to " << keep << " bytes accepted";
      EXPECT_FALSE(error.empty()) << kind.label << " at " << keep;
    }
  }
}

TEST_F(RobustnessTest, DeclaredSizeLargerThanFileIsRejectedWithoutAllocating) {
  // A chunk header claiming a huge payload must be rejected by validation
  // against the actual remaining bytes — not by attempting the allocation.
  const std::string path = TempPath("huge_declared_size.bin");
  {
    store::ChunkBuilder chunk;
    chunk.PutString("tiny");
    store::Writer writer;
    std::string error;
    ASSERT_TRUE(writer.Open(path, store::kKindModel, &error)) << error;
    ASSERT_TRUE(writer.WriteChunk(store::FourCc('D', 'A', 'T', 'A'), chunk,
                                  &error))
        << error;
    ASSERT_TRUE(writer.Finish(&error)) << error;
  }
  std::vector<std::uint8_t> bytes = ReadAll(path);
  // Chunk size field sits right after the header's 20 bytes + 4-byte tag.
  const std::size_t size_offset = 20 + 4;
  const std::uint64_t absurd = 1ull << 60;
  std::memcpy(bytes.data() + size_offset, &absurd, sizeof(absurd));
  WriteAll(path, bytes);

  store::Reader reader;
  std::string error;
  EXPECT_FALSE(reader.Open(path, store::kKindModel, &error));
  EXPECT_FALSE(error.empty());
}

// ---------------------------------------------------------------------------
// 3. Cache degradation: quarantine + rebuild

TEST_F(RobustnessTest, CorruptCorpusCacheIsQuarantinedAndRebuilt) {
  const std::string path = TempPath("cache_quarantine.snapshot");
  std::remove(path.c_str());
  std::remove((path + ".corrupt").c_str());
  const dataset::CorpusConfig config = TinyCorpusConfig();
  const dataset::Corpus cold = dataset::BuildOrLoadCorpus(config, path);
  ASSERT_TRUE(store::IsContainerFile(path));

  // Corrupt the cache in place.
  std::vector<std::uint8_t> bytes = ReadAll(path);
  bytes[bytes.size() / 2] ^= 0x20;
  WriteAll(path, bytes);

  const dataset::Corpus rebuilt = dataset::BuildOrLoadCorpus(config, path);
  // The bad cache was moved aside, a fresh one written, and the rebuilt
  // corpus matches the cold build exactly.
  EXPECT_TRUE(FileExists(path + ".corrupt"));
  EXPECT_TRUE(store::IsContainerFile(path));
  ASSERT_EQ(rebuilt.functions.size(), cold.functions.size());
  for (std::size_t i = 0; i < cold.functions.size(); ++i) {
    EXPECT_EQ(rebuilt.functions[i].function, cold.functions[i].function);
    EXPECT_EQ(rebuilt.functions[i].ast_size, cold.functions[i].ast_size);
  }
}

TEST_F(RobustnessTest, CorruptIndexSnapshotRebuildMatchesColdTopKBitwise) {
  const std::string path = TempPath("index_quarantine.snapshot");
  core::AsteriaModel model(SmallModelConfig());
  const auto features = SyntheticFeatures(20, 17);
  core::SearchIndex cold(model);
  cold.AddAll(features);
  std::string error;
  ASSERT_TRUE(cold.Save(path, &error)) << error;

  std::vector<std::uint8_t> bytes = ReadAll(path);
  bytes[bytes.size() - 3] ^= 0x08;
  WriteAll(path, bytes);

  // The degradation path the benches use: load fails -> quarantine ->
  // re-save from the in-memory index -> load again.
  core::SearchIndex warm(model);
  ASSERT_FALSE(warm.Load(path, &error));
  std::string quarantined;
  ASSERT_TRUE(store::QuarantineFile(path, &quarantined));
  EXPECT_TRUE(FileExists(quarantined));
  ASSERT_TRUE(cold.Save(path, &error)) << error;
  ASSERT_TRUE(warm.Load(path, &error)) << error;

  const auto expected = cold.TopK(features.front(), 10);
  const auto actual = warm.TopK(features.front(), 10);
  ASSERT_EQ(actual.size(), expected.size());
  for (std::size_t i = 0; i < actual.size(); ++i) {
    EXPECT_EQ(actual[i].index, expected[i].index);
    EXPECT_EQ(actual[i].score, expected[i].score);  // bitwise
  }
}

TEST_F(RobustnessTest, CorruptFirmwareEncodingsCacheRebuildsIdentically) {
  const std::string path = TempPath("fw_cache_quarantine.bin");
  std::remove(path.c_str());
  std::remove((path + ".corrupt").c_str());
  core::AsteriaModel model(SmallModelConfig());
  firmware::FirmwareCorpus corpus =
      firmware::BuildFirmwareCorpus(TinyFirmwareConfig());
  ASSERT_GT(corpus.functions.size(), 0u);

  const firmware::VulnSearchResult cold =
      firmware::RunVulnSearchCached(model, corpus, 0.5, 4, path);
  ASSERT_TRUE(FileExists(path));

  std::vector<std::uint8_t> bytes = ReadAll(path);
  bytes[bytes.size() / 3] ^= 0x04;
  WriteAll(path, bytes);

  const firmware::VulnSearchResult warm =
      firmware::RunVulnSearchCached(model, corpus, 0.5, 4, path);
  EXPECT_TRUE(FileExists(path + ".corrupt"));
  ASSERT_EQ(warm.per_cve.size(), cold.per_cve.size());
  EXPECT_EQ(warm.total_candidates, cold.total_candidates);
  EXPECT_EQ(warm.total_confirmed, cold.total_confirmed);
}

// ---------------------------------------------------------------------------
// 4. Fault-isolated pipelines

TEST_F(RobustnessTest, CorpusBuildIsolatesFailingFunctions) {
  const dataset::CorpusConfig config = TinyCorpusConfig();
  const dataset::Corpus clean = dataset::BuildCorpus(config);
  ASSERT_GT(clean.functions.size(), 1u);
  EXPECT_EQ(clean.report.failed, 0);
  EXPECT_EQ(clean.report.ok,
            static_cast<std::int64_t>(clean.functions.size()));

  Arm("corpus.function=every:2");
  const dataset::Corpus degraded = dataset::BuildCorpus(config);
  EXPECT_GT(degraded.report.failed, 0);
  EXPECT_LT(degraded.functions.size(), clean.functions.size());
  EXPECT_FALSE(degraded.report.reasons.empty());
  EXPECT_EQ(degraded.report.total(), clean.report.total());
}

TEST_F(RobustnessTest, SearchIndexIsolatesFailingEncodings) {
  core::AsteriaModel model(SmallModelConfig());
  const auto features = SyntheticFeatures(10, 5);

  core::SearchIndex clean(model);
  const util::PipelineReport clean_report = clean.AddAll(features);
  EXPECT_TRUE(clean_report.Clean());
  EXPECT_EQ(clean.size(), 10);

  Arm("search.encode=every:3");
  core::SearchIndex degraded(model);  // threads=1: deterministic fire order
  const util::PipelineReport report = degraded.AddAll(features);
  EXPECT_EQ(report.failed, 3);
  EXPECT_EQ(report.ok, 7);
  EXPECT_EQ(degraded.size(), 7);
  // Surviving entries are the non-fired ones, in input order, with
  // encodings identical to the clean run's.
  int degraded_idx = 0;
  for (int i = 0; i < clean.size(); ++i) {
    if ((i + 1) % 3 == 0) continue;  // fired
    ASSERT_LT(degraded_idx, degraded.size());
    EXPECT_EQ(degraded.name(degraded_idx), clean.name(i));
    EXPECT_EQ(std::memcmp(degraded.encoding(degraded_idx).data(),
                          clean.encoding(i).data(),
                          clean.encoding(i).size() * sizeof(double)),
              0);
    ++degraded_idx;
  }
}

TEST_F(RobustnessTest, EmptyTreeIsSkippedNotFailed) {
  core::AsteriaModel model(SmallModelConfig());
  auto features = SyntheticFeatures(3, 5);
  features[1].tree = ast::BinaryAst();  // empty
  core::SearchIndex index(model);
  const util::PipelineReport report = index.AddAll(features);
  EXPECT_EQ(report.ok, 2);
  EXPECT_EQ(report.skipped, 1);
  EXPECT_EQ(report.failed, 0);
  EXPECT_EQ(index.size(), 2);
}

TEST_F(RobustnessTest, FirmwareEncodingFailuresKeepPositionalAlignment) {
  core::AsteriaModel model(SmallModelConfig());
  firmware::FirmwareCorpus corpus =
      firmware::BuildFirmwareCorpus(TinyFirmwareConfig());
  ASSERT_GT(corpus.functions.size(), 3u);

  const firmware::VulnSearchResult clean =
      firmware::RunVulnSearch(model, corpus, 0.5);

  Arm("firmware.encode=every:4");
  util::PipelineReport report;
  const auto encodings =
      firmware::EncodeFirmwareCorpus(model, corpus, &report);
  // Placeholders keep corpus order: slot i still belongs to function i.
  ASSERT_EQ(encodings.size(), corpus.functions.size());
  EXPECT_GT(report.failed, 0);
  for (std::size_t i = 0; i < encodings.size(); ++i) {
    if ((i + 1) % 4 == 0) {
      EXPECT_EQ(encodings[i].size(), 0u) << i;
    } else {
      EXPECT_GT(encodings[i].size(), 0u) << i;
    }
  }
  util::ClearFailpoints();
  const firmware::VulnSearchResult degraded =
      firmware::RunVulnSearch(model, corpus, encodings, 0.5);
  // The search survives the holes and reports the exclusions.
  EXPECT_GT(degraded.report.skipped, 0);
  EXPECT_EQ(degraded.per_cve.size(), clean.per_cve.size());
}

TEST_F(RobustnessTest, TrainingSkipsNonFiniteLossAndKeepsGoing) {
  core::AsteriaModel model(SmallModelConfig());
  const auto features = SyntheticFeatures(6, 9);
  std::vector<core::LabeledPair> pairs;
  for (int i = 0; i < 6; ++i) {
    pairs.push_back({i, (i + 1) % 6, i % 2 == 0});
  }
  util::Rng rng(3);

  Arm("train.loss=every:2");
  util::PipelineReport report;
  const double loss = model.TrainEpoch(features, pairs, rng, &report);
  EXPECT_TRUE(std::isfinite(loss));
  EXPECT_EQ(report.failed, 3);
  EXPECT_EQ(report.ok, 3);
  EXPECT_FALSE(report.reasons.empty());

  // The model survived: a clean epoch afterwards trains every pair.
  util::ClearFailpoints();
  util::PipelineReport clean;
  const double loss2 = model.TrainEpoch(features, pairs, rng, &clean);
  EXPECT_TRUE(std::isfinite(loss2));
  EXPECT_EQ(clean.ok, 6);
  EXPECT_EQ(clean.failed, 0);
}

TEST_F(RobustnessTest, PipelineReportMergesInOrder) {
  util::PipelineReport a;
  a.stage = "stage";
  a.AddOk();
  a.AddFailed("first");
  util::PipelineReport b;
  b.AddSkipped("second");
  b.AddFailed("third");
  a.Merge(b);
  EXPECT_EQ(a.ok, 1);
  EXPECT_EQ(a.skipped, 1);
  EXPECT_EQ(a.failed, 2);
  EXPECT_EQ(a.total(), 4);
  ASSERT_EQ(a.reasons.size(), 3u);
  EXPECT_EQ(a.reasons[0], "first");
  EXPECT_EQ(a.reasons[1], "second");
  EXPECT_EQ(a.reasons[2], "third");
  EXPECT_NE(a.Summary().find("stage"), std::string::npos);
  EXPECT_FALSE(a.Clean());
}

// ---------------------------------------------------------------------------
// 5. Structurer depth bound

TEST_F(RobustnessTest, StructurerDepthBoundDegradesToGotosCleanly) {
  // A chain of N conditional branches, each skipping to the final return,
  // structures as N nested if-then's — deeper than a tiny budget allows.
  using binary::Instruction;
  using binary::Opcode;
  constexpr int kLevels = 24;
  binary::BinModule module;
  module.isa = binary::Isa::kX64;
  binary::BinFunction fn;
  fn.name = "deep";
  fn.num_params = 1;
  fn.param_is_array.assign(1, 0);
  fn.frame_words = 5;
  const int ret_pc = 2 * kLevels + 1;
  fn.code.push_back(Instruction::Make(Opcode::kLoadI, 1,
                                      binary::kFramePointerReg, 0, 0));
  for (int i = 0; i < kLevels; ++i) {
    fn.code.push_back(Instruction::Make(Opcode::kCmpI, 1, 0, 0, i));
    fn.code.push_back(Instruction::Make(Opcode::kBrCond, 0, 0, 0, ret_pc,
                                        binary::Cond::kLt));
  }
  fn.code.push_back(Instruction::Make(Opcode::kRet, 0));
  module.functions.push_back(std::move(fn));

  const auto& bin_fn = module.functions[0];
  decompiler::MachineCfg cfg(bin_fn);
  decompiler::DPool pool;
  const auto lifted = decompiler::LiftFunction(module, cfg, &pool);

  // Generous budget: structures fully, no diagnostic.
  std::string error;
  const int root_ok =
      decompiler::StructureFunction(cfg, lifted, &pool, &error);
  EXPECT_GE(root_ok, 0);
  EXPECT_TRUE(error.empty()) << error;

  // Tiny budget: must terminate (no stack blowup / infinite re-queue),
  // yield a usable tree, and report the degradation.
  decompiler::DPool bounded_pool;
  const auto bounded_lifted =
      decompiler::LiftFunction(module, cfg, &bounded_pool);
  error.clear();
  const int root_bounded = decompiler::StructureFunction(
      cfg, bounded_lifted, &bounded_pool, &error, /*max_depth=*/3);
  EXPECT_GE(root_bounded, 0);
  EXPECT_NE(error.find("depth"), std::string::npos) << error;

  // The public path surfaces the same diagnostic on DecompiledFunction.
  const auto decompiled = decompiler::DecompileFunction(module, 0);
  std::string validate_error;
  EXPECT_TRUE(decompiled.tree.Validate(&validate_error)) << validate_error;
}

}  // namespace
}  // namespace asteria
