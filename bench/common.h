// Shared experiment harness for the bench binaries.
//
// Builds the corpus, trains Asteria/Gemini, and scores labeled pairs for
// all four methods (ASTERIA, ASTERIA-WOC, Gemini, Diaphora). Every bench
// binary that regenerates a figure/table of the paper includes this.
#pragma once

#include <string>
#include <vector>

#include "baselines/diaphora.h"
#include "baselines/gemini.h"
#include "core/asteria.h"
#include "dataset/corpus.h"
#include "eval/roc.h"
#include "util/flags.h"
#include "util/rng.h"

namespace asteria::bench {

// A built corpus plus a mixed-architecture train/test split.
struct ExperimentSetup {
  dataset::Corpus corpus;
  std::vector<dataset::CorpusPair> train;
  std::vector<dataset::CorpusPair> test;
};

// Standard flags shared by the training benches; call before Parse().
void DefineCommonFlags(util::Flags* flags);

// Just the observability flags (--log_level, --metrics_out) for benches
// that define their own experiment flags instead of the common set.
// DefineCommonFlags already includes these.
void DefineObservabilityFlags(util::Flags* flags);

// Applies the cross-cutting flags after Parse(): output directory, log
// level (--quiet wins over --log_level), failpoint spec, and — when
// --metrics_out is set — registers an atexit hook that writes the metrics
// snapshot JSON when the bench exits. Call once right after Parse();
// BuildSetup() also calls it, so benches that use BuildSetup get it for
// free (the call is idempotent).
void ApplyCommonFlags(const util::Flags& flags);

// Applies the encoder-shape and kernel-selection flags (--embedding,
// --hidden, --fast_encoder) to an AsteriaConfig. --hidden=0 (the default)
// keeps hidden_dim equal to embedding_dim, matching the paper's setup.
void ApplyEncoderFlags(const util::Flags& flags, core::AsteriaConfig* config);

// Builds the corpus and the mixed-arch 8:2 split from the parsed flags.
ExperimentSetup BuildSetup(const util::Flags& flags);

// Trains an Asteria model on setup.train for `epochs` epochs (logs per
// epoch). Returns the per-epoch mean losses.
std::vector<double> TrainAsteria(core::AsteriaModel* model,
                                 const ExperimentSetup& setup, int epochs,
                                 util::Rng* rng);

// Trains a Gemini model on setup.train.
std::vector<double> TrainGemini(baselines::GeminiModel* model,
                                const ExperimentSetup& setup, int epochs,
                                util::Rng* rng);

// Scores pairs with Asteria; encodes each distinct function once (offline)
// then uses the fast online head. `calibrated` = apply eq. (10).
std::vector<eval::Scored> ScoreAsteria(
    const core::AsteriaModel& model, const dataset::Corpus& corpus,
    const std::vector<dataset::CorpusPair>& pairs, bool calibrated);

std::vector<eval::Scored> ScoreGemini(
    const baselines::GeminiModel& model, const dataset::Corpus& corpus,
    const std::vector<dataset::CorpusPair>& pairs);

std::vector<eval::Scored> ScoreDiaphora(
    const dataset::Corpus& corpus,
    const std::vector<dataset::CorpusPair>& pairs);

// Restricts pairs to one ISA combination.
std::vector<dataset::CorpusPair> FilterPairs(
    const dataset::Corpus& corpus,
    const std::vector<dataset::CorpusPair>& pairs, int isa_a, int isa_b);

// Output directory for CSVs (created on demand).
std::string OutDir();

}  // namespace asteria::bench
