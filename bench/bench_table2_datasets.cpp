// Table II: number of binaries and functions in the datasets.
//
// Builds the three corpora of the reproduction (Buildroot-like training
// corpus, OpenSSL-like evaluation corpus, Firmware corpus) and prints the
// per-ISA binary/function counts, mirroring the paper's Table II rows.
// CSV: bench_out/table2_datasets.csv.
#include <cstdio>

#include "common.h"
#include "firmware/search.h"
#include "util/table.h"

namespace asteria {
namespace {

int Run(int argc, char** argv) {
  util::Flags flags;
  flags.DefineInt("buildroot_packages", 12, "packages in the Buildroot-like corpus");
  flags.DefineInt("openssl_packages", 8, "packages in the OpenSSL-like corpus");
  flags.DefineInt("firmware_images", 20, "firmware images");
  flags.DefineInt("seed", 1, "seed");
  flags.DefineString("out", "bench_out", "CSV output directory");
  bench::DefineObservabilityFlags(&flags);
  if (!flags.Parse(argc, argv)) return 1;
  bench::ApplyCommonFlags(flags);

  util::TextTable table({"name", "platform", "# of binaries", "# of functions"});

  auto add_corpus = [&](const char* name, int packages, std::uint64_t seed) {
    dataset::CorpusConfig config;
    config.packages = packages;
    config.seed = seed;
    dataset::Corpus corpus = dataset::BuildCorpus(config);
    std::size_t total_bin = 0, total_fn = 0;
    for (int isa = 0; isa < binary::kNumIsas; ++isa) {
      table.AddRow({name,
                    std::string(binary::IsaName(static_cast<binary::Isa>(isa))),
                    std::to_string(corpus.binaries_per_isa[static_cast<std::size_t>(isa)]),
                    std::to_string(corpus.functions_per_isa[static_cast<std::size_t>(isa)])});
      total_bin += static_cast<std::size_t>(corpus.binaries_per_isa[static_cast<std::size_t>(isa)]);
      total_fn += static_cast<std::size_t>(corpus.functions_per_isa[static_cast<std::size_t>(isa)]);
    }
    return std::pair<std::size_t, std::size_t>{total_bin, total_fn};
  };

  std::printf("\n== Table II: datasets ==\n\n");
  std::size_t bins = 0, fns = 0;
  auto [b1, f1] = add_corpus("Buildroot",
                             static_cast<int>(flags.GetInt("buildroot_packages")),
                             static_cast<std::uint64_t>(flags.GetInt("seed")));
  auto [b2, f2] = add_corpus("OpenSSL",
                             static_cast<int>(flags.GetInt("openssl_packages")),
                             static_cast<std::uint64_t>(flags.GetInt("seed")) + 101);
  bins += b1 + b2;
  fns += f1 + f2;

  // Firmware corpus: binaries counted per ISA from the unpacked images.
  firmware::FirmwareCorpusConfig fw_config;
  fw_config.images = static_cast<int>(flags.GetInt("firmware_images"));
  fw_config.seed = static_cast<std::uint64_t>(flags.GetInt("seed")) + 202;
  firmware::FirmwareCorpus fw = firmware::BuildFirmwareCorpus(fw_config);
  std::array<int, 4> fw_bins{};
  std::array<int, 4> fw_fns{};
  for (const firmware::FirmwareImage& image : fw.images) {
    for (const binary::BinModule& module : image.modules) {
      fw_bins[static_cast<std::size_t>(module.isa)] += 1;
      fw_fns[static_cast<std::size_t>(module.isa)] +=
          static_cast<int>(module.functions.size());
    }
  }
  for (int isa = 0; isa < binary::kNumIsas; ++isa) {
    table.AddRow({"Firmware",
                  std::string(binary::IsaName(static_cast<binary::Isa>(isa))),
                  std::to_string(fw_bins[static_cast<std::size_t>(isa)]),
                  std::to_string(fw_fns[static_cast<std::size_t>(isa)])});
    bins += static_cast<std::size_t>(fw_bins[static_cast<std::size_t>(isa)]);
    fns += static_cast<std::size_t>(fw_fns[static_cast<std::size_t>(isa)]);
  }
  table.AddRow({"Total", "", std::to_string(bins), std::to_string(fns)});
  std::fputs(table.ToString().c_str(), stdout);
  std::printf("\n(firmware images: %zu, unpack failures: %d; ARM/PPC dominate as in the paper)\n",
              fw.images.size(), fw.unpack_failures);
  table.WriteCsv(flags.GetString("out") + "/table2_datasets.csv");
  return 0;
}

}  // namespace
}  // namespace asteria

int main(int argc, char** argv) { return asteria::Run(argc, argv); }
