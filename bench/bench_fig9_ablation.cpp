// Figure 9: impact of the Siamese head (classification vs cosine
// regression) and the leaf-state initialization (zeros vs ones).
//
// Four model variants trained on the same split; the paper reports
// Classification > Regression and Leaf-0 > Leaf-1.
// CSV: bench_out/fig9_ablation.csv.
#include <cstdio>

#include "common.h"
#include "util/table.h"

namespace asteria {
namespace {

int Run(int argc, char** argv) {
  util::Flags flags;
  flags.DefineInt("epochs", 4, "epochs per variant (4 variants retrained)");
  bench::DefineCommonFlags(&flags);
  if (!flags.Parse(argc, argv)) return 1;
  bench::ApplyCommonFlags(flags);
  bench::ExperimentSetup setup = bench::BuildSetup(flags);
  const int epochs = static_cast<int>(flags.GetInt("epochs"));

  struct Variant {
    const char* name;
    core::SiameseHead head;
    bool leaf_ones;
  };
  const Variant kVariants[] = {
      {"Classification/Leaf-0", core::SiameseHead::kClassification, false},
      {"Regression/Leaf-0", core::SiameseHead::kRegression, false},
      {"Classification/Leaf-1", core::SiameseHead::kClassification, true},
      {"Regression/Leaf-1", core::SiameseHead::kRegression, true},
  };

  std::printf("\n== Figure 9: siamese-head and leaf-init ablations ==\n\n");
  util::TextTable table({"variant", "AUC", "TPR@5%FPR"});
  for (const Variant& variant : kVariants) {
    core::AsteriaConfig config;
    bench::ApplyEncoderFlags(flags, &config);
    config.siamese.head = variant.head;
    config.siamese.encoder.leaf_init_ones = variant.leaf_ones;
    config.seed = static_cast<std::uint64_t>(flags.GetInt("seed"));
    core::AsteriaModel model(config);
    util::Rng rng(static_cast<std::uint64_t>(flags.GetInt("seed")) + 31);
    bench::TrainAsteria(&model, setup, epochs, &rng);
    const auto scored =
        bench::ScoreAsteria(model, setup.corpus, setup.test, true);
    const eval::RocResult roc = eval::ComputeRoc(scored);
    table.AddRow({variant.name, util::FormatDouble(roc.auc),
                  util::FormatDouble(eval::TprAtFpr(roc, 0.05))});
  }
  std::fputs(table.ToString().c_str(), stdout);
  std::printf("\n(paper: Classification beats Regression; Leaf-0 beats Leaf-1)\n");
  table.WriteCsv(bench::OutDir() + "/fig9_ablation.csv");
  return 0;
}

}  // namespace
}  // namespace asteria

int main(int argc, char** argv) { return asteria::Run(argc, argv); }
