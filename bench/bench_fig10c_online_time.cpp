// Figure 10(c): online-phase similarity-calculation time per pair
// (google-benchmark microbenchmarks).
//
//   ASTERIA : eq. (8) replay on two precomputed encodings (paper: 8e-9 s)
//   Gemini  : cosine over two structure2vec embeddings    (paper: 6e-5 s)
//   Diaphora: prime-product / multiset comparison         (paper: 4e-3 s)
// The paper's shape: ASTERIA's online phase is orders of magnitude faster
// than Diaphora and much faster than Gemini at their native embedding
// sizes (Gemini embeddings are 4x wider; Diaphora compares bignums).
//
// BM_SearchTopK additionally times a whole top-10 query against a prebuilt
// SearchIndex, sharded over worker threads: /1 is the serial baseline and
// /0 resolves to the --threads=N flag (stripped before gbench parsing).
//
// --fast_encoder={0,1} (default 1, also stripped before gbench) selects
// the encode kernel used by the Asteria benchmarks; BM_AsteriaEncodeOffline
// vs BM_AsteriaEncodeOfflineTape shows the fused-kernel speedup inline.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>

#include "baselines/diaphora.h"
#include "baselines/gemini.h"
#include "core/asteria.h"
#include "core/search_index.h"
#include "util/log.h"
#include "util/metrics.h"
#include "util/rng.h"

namespace asteria {

// Set by --threads=N in main(); consumed by BM_SearchTopK/0.
int g_flag_threads = 1;
// Set by --fast_encoder={0,1} in main(); selects the Model() encode kernel.
bool g_flag_fast_encoder = true;

namespace {

ast::Ast SyntheticTree(int nodes, util::Rng& rng) {
  ast::Ast tree;
  std::vector<ast::NodeId> pool;
  pool.push_back(tree.AddVar("x"));
  while (tree.size() < nodes) {
    const auto kind = static_cast<ast::NodeKind>(
        rng.NextBounded(static_cast<std::uint64_t>(ast::kNumNodeKinds)));
    const int arity = static_cast<int>(rng.NextBounded(3));
    std::vector<ast::NodeId> children;
    for (int i = 0; i < arity && !pool.empty(); ++i) {
      children.push_back(pool.back());
      pool.pop_back();
    }
    pool.push_back(tree.AddNode(kind, std::move(children)));
  }
  const ast::NodeId root = tree.AddNode(ast::NodeKind::kBlock, pool);
  tree.set_root(root);
  return tree;
}

const core::AsteriaModel& Model() {
  static core::AsteriaModel* model = [] {
    core::AsteriaConfig config;
    config.siamese.use_fast_encoder = g_flag_fast_encoder;
    return new core::AsteriaModel(config);
  }();
  return *model;
}

// Same weights (same seed), autograd-tape encode path — the A/B reference
// for BM_AsteriaEncodeOfflineTape.
const core::AsteriaModel& TapeModel() {
  static core::AsteriaModel* model = [] {
    core::AsteriaConfig config;
    config.siamese.use_fast_encoder = false;
    return new core::AsteriaModel(config);
  }();
  return *model;
}

void BM_AsteriaOnline(benchmark::State& state) {
  util::Rng rng(1);
  const auto t1 = core::AsteriaModel::Preprocess(SyntheticTree(80, rng));
  const auto t2 = core::AsteriaModel::Preprocess(SyntheticTree(80, rng));
  const nn::Matrix e1 = Model().Encode(t1);
  const nn::Matrix e2 = Model().Encode(t2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Model().SimilarityFromEncodings(e1, e2));
  }
}
BENCHMARK(BM_AsteriaOnline);

void BM_AsteriaOnlineCalibrated(benchmark::State& state) {
  util::Rng rng(2);
  const auto t1 = core::AsteriaModel::Preprocess(SyntheticTree(80, rng));
  const auto t2 = core::AsteriaModel::Preprocess(SyntheticTree(80, rng));
  const nn::Matrix e1 = Model().Encode(t1);
  const nn::Matrix e2 = Model().Encode(t2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::CalibratedSimilarity(
        Model().SimilarityFromEncodings(e1, e2), 3, 5));
  }
}
BENCHMARK(BM_AsteriaOnlineCalibrated);

void BM_GeminiOnline(benchmark::State& state) {
  // Gemini's native 64-dim embeddings compared with cosine.
  util::Rng rng(3);
  nn::Matrix e1(64, 1), e2(64, 1);
  for (int i = 0; i < 64; ++i) {
    e1(i, 0) = rng.NextDouble(-1, 1);
    e2(i, 0) = rng.NextDouble(-1, 1);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        baselines::GeminiModel::CosineSimilarity(e1, e2));
  }
}
BENCHMARK(BM_GeminiOnline);

void BM_DiaphoraOnline(benchmark::State& state) {
  // What Diaphora actually does per pair: its database stores only the
  // prime products, so comparison factorizes both bignums first.
  util::Rng rng(4);
  const auto s1 = baselines::DiaphoraHash(SyntheticTree(80, rng));
  const auto s2 = baselines::DiaphoraHash(SyntheticTree(80, rng));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        baselines::DiaphoraProductSimilarity(s1.product, s2.product));
  }
}
BENCHMARK(BM_DiaphoraOnline);

void BM_DiaphoraOnlinePrefactored(benchmark::State& state) {
  // Lower bound when histograms are cached instead of products.
  util::Rng rng(4);
  const auto s1 = baselines::DiaphoraHash(SyntheticTree(80, rng));
  const auto s2 = baselines::DiaphoraHash(SyntheticTree(80, rng));
  for (auto _ : state) {
    benchmark::DoNotOptimize(baselines::DiaphoraSimilarity(s1, s2));
  }
}
BENCHMARK(BM_DiaphoraOnlinePrefactored);

// Offline encoding cost for context (one 80-node AST).
void BM_AsteriaEncodeOffline(benchmark::State& state) {
  util::Rng rng(5);
  const auto tree = core::AsteriaModel::Preprocess(
      SyntheticTree(static_cast<int>(state.range(0)), rng));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Model().Encode(tree));
  }
}
BENCHMARK(BM_AsteriaEncodeOffline)->Arg(20)->Arg(80)->Arg(200);

// The same encode through the autograd tape (the pre-fusion path), for an
// inline per-tree view of the fused-kernel speedup.
void BM_AsteriaEncodeOfflineTape(benchmark::State& state) {
  util::Rng rng(5);
  const auto tree = core::AsteriaModel::Preprocess(
      SyntheticTree(static_cast<int>(state.range(0)), rng));
  for (auto _ : state) {
    benchmark::DoNotOptimize(TapeModel().Encode(tree));
  }
}
BENCHMARK(BM_AsteriaEncodeOfflineTape)->Arg(20)->Arg(80)->Arg(200);

// A 512-function index built once; each TopK call re-scores the whole
// corpus, so this is the full online phase of a clone-search query.
core::SearchIndex& SharedIndex() {
  static core::SearchIndex* index = [] {
    util::Rng rng(6);
    std::vector<core::FunctionFeature> features;
    features.reserve(512);
    for (int i = 0; i < 512; ++i) {
      core::FunctionFeature feature;
      feature.name = "fn" + std::to_string(i);
      feature.tree = core::AsteriaModel::Preprocess(SyntheticTree(60, rng));
      feature.callee_count = static_cast<int>(rng.NextBounded(8));
      features.push_back(std::move(feature));
    }
    auto* built = new core::SearchIndex(Model(), 1);
    built->AddAll(features);
    return built;
  }();
  return *index;
}

void BM_SearchTopK(benchmark::State& state) {
  const int threads = state.range(0) > 0 ? static_cast<int>(state.range(0))
                                         : g_flag_threads;
  core::SearchIndex& index = SharedIndex();
  index.set_threads(threads);
  util::Rng rng(7);
  core::FunctionFeature query;
  query.name = "query";
  query.tree = core::AsteriaModel::Preprocess(SyntheticTree(60, rng));
  query.callee_count = 3;
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.TopK(query, 10));
  }
  state.counters["threads"] = threads;
}
BENCHMARK(BM_SearchTopK)->Arg(1)->Arg(0);

}  // namespace
}  // namespace asteria

int main(int argc, char** argv) {
  std::string metrics_out;
  // Strip our flags before google-benchmark sees the args.
  // Parsed strictly: garbage is an error, not a silent 1.
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      char* end = nullptr;
      const long threads = std::strtol(argv[i] + 10, &end, 10);
      if (end == argv[i] + 10 || *end != '\0' || threads < 1) {
        std::fprintf(stderr, "bad --threads value '%s'\n", argv[i] + 10);
        return 1;
      }
      asteria::g_flag_threads = static_cast<int>(threads);
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      --argc;
      --i;
    } else if (std::strncmp(argv[i], "--fast_encoder=", 15) == 0) {
      const char* value = argv[i] + 15;
      if (std::strcmp(value, "0") != 0 && std::strcmp(value, "1") != 0) {
        std::fprintf(stderr, "bad --fast_encoder value '%s' (want 0 or 1)\n",
                     value);
        return 1;
      }
      asteria::g_flag_fast_encoder = value[0] == '1';
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      --argc;
      --i;
    } else if (std::strncmp(argv[i], "--log_level=", 12) == 0) {
      asteria::util::LogLevel level = asteria::util::LogLevel::kInfo;
      if (!asteria::util::ParseLogLevel(argv[i] + 12, &level)) {
        std::fprintf(stderr,
                     "bad --log_level value '%s' (debug|info|warn|error)\n",
                     argv[i] + 12);
        return 1;
      }
      asteria::util::SetLogLevel(level);
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      --argc;
      --i;
    } else if (std::strncmp(argv[i], "--metrics_out=", 14) == 0) {
      metrics_out = argv[i] + 14;
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      --argc;
      --i;
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (!metrics_out.empty()) {
    std::string error;
    if (!asteria::util::SnapshotMetrics().WriteJson(metrics_out, &error)) {
      std::fprintf(stderr, "cannot write --metrics_out: %s\n", error.c_str());
      return 1;
    }
  }
  return 0;
}
