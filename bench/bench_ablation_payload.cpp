// Ablation (paper §VII future work): embedding constant/string payloads.
//
// The paper's digitalization drops constants and strings and §VII proposes
// "another embedding system to embed constants and strings ... and combine
// the embedding vectors with the AST encoding". This bench implements that
// extension (TreeLstmConfig::embed_payloads) and measures its effect and
// its cost. CSV: bench_out/ablation_payload.csv.
#include <cstdio>

#include "common.h"
#include "util/table.h"
#include "util/timer.h"

namespace asteria {
namespace {

int Run(int argc, char** argv) {
  util::Flags flags;
  bench::DefineCommonFlags(&flags);
  if (!flags.Parse(argc, argv)) return 1;
  bench::ApplyCommonFlags(flags);
  bench::ExperimentSetup setup = bench::BuildSetup(flags);
  const int epochs = static_cast<int>(flags.GetInt("epochs"));

  std::printf("\n== Ablation: payload (constant/string) embedding, §VII ==\n\n");
  util::TextTable table({"variant", "AUC", "TPR@5%FPR", "weights",
                         "train time"});
  for (const bool payloads : {false, true}) {
    core::AsteriaConfig config;
    bench::ApplyEncoderFlags(flags, &config);
    config.siamese.encoder.embed_payloads = payloads;
    config.seed = static_cast<std::uint64_t>(flags.GetInt("seed"));
    core::AsteriaModel model(config);
    util::Rng rng(static_cast<std::uint64_t>(flags.GetInt("seed")) + 77);
    util::Timer timer;
    bench::TrainAsteria(&model, setup, epochs, &rng);
    const double train_time = timer.ElapsedSeconds();
    const auto scored =
        bench::ScoreAsteria(model, setup.corpus, setup.test, true);
    const eval::RocResult roc = eval::ComputeRoc(scored);
    table.AddRow({payloads ? "AST + payload embedding" : "AST only (paper)",
                  util::FormatDouble(roc.auc),
                  util::FormatDouble(eval::TprAtFpr(roc, 0.05)),
                  std::to_string(model.TotalWeights()),
                  util::FormatSeconds(train_time)});
  }
  std::fputs(table.ToString().c_str(), stdout);
  std::printf("\n(§VII predicts an accuracy/cost tradeoff from the extra "
              "embedding system)\n");
  table.WriteCsv(bench::OutDir() + "/ablation_payload.csv");
  return 0;
}

}  // namespace
}  // namespace asteria

int main(int argc, char** argv) { return asteria::Run(argc, argv); }
