// Ablation (DESIGN.md §6 extension): the inlining filter threshold β of the
// callee-count calibration (§III-C).
//
// The paper fixes β without a sweep; this bench quantifies the choice:
// β = 0 counts every callee (inlined-away small callees on some ISAs then
// break the count match), large β empties the callee sets (calibration
// degenerates to ASTERIA-WOC). CSV: bench_out/ablation_beta.csv.
#include <cstdio>

#include "common.h"
#include "decompiler/decompile.h"
#include "util/table.h"

namespace asteria {
namespace {

int Run(int argc, char** argv) {
  util::Flags flags;
  bench::DefineCommonFlags(&flags);
  if (!flags.Parse(argc, argv)) return 1;
  bench::ApplyCommonFlags(flags);
  bench::ExperimentSetup setup = bench::BuildSetup(flags);
  const int epochs = static_cast<int>(flags.GetInt("epochs"));
  util::Rng rng(static_cast<std::uint64_t>(flags.GetInt("seed")) + 17);

  core::AsteriaConfig config;
  bench::ApplyEncoderFlags(flags, &config);
  core::AsteriaModel model(config);
  bench::TrainAsteria(&model, setup, epochs, &rng);

  // Base (uncalibrated) scores once; calibration re-applied per β.
  const auto raw =
      bench::ScoreAsteria(model, setup.corpus, setup.test, /*calibrated=*/false);

  std::printf("\n== Ablation: calibration filter threshold β ==\n\n");
  util::TextTable table({"beta", "AUC", "mean |C| (x86)", "mean |C| (PPC)"});
  for (int beta : {0, 1, 2, 4, 6, 8, 12, 1000000}) {
    std::vector<eval::Scored> scored;
    for (std::size_t i = 0; i < setup.test.size(); ++i) {
      const auto& pair = setup.test[i];
      const auto& fa = setup.corpus.functions[static_cast<std::size_t>(pair.a)];
      const auto& fb = setup.corpus.functions[static_cast<std::size_t>(pair.b)];
      const double calibrated = core::CalibratedSimilarity(
          raw[i].first,
          decompiler::CalleeCountAtBeta(fa.callee_sizes, beta),
          decompiler::CalleeCountAtBeta(fb.callee_sizes, beta));
      scored.push_back({calibrated, pair.homologous});
    }
    double mean_x86 = 0.0, mean_ppc = 0.0;
    int n_x86 = 0, n_ppc = 0;
    for (const auto& fn : setup.corpus.functions) {
      const int count = decompiler::CalleeCountAtBeta(fn.callee_sizes, beta);
      if (fn.isa == 0) {
        mean_x86 += count;
        ++n_x86;
      }
      if (fn.isa == 3) {
        mean_ppc += count;
        ++n_ppc;
      }
    }
    const std::string label = beta >= 1000000 ? "inf (WOC)" : std::to_string(beta);
    table.AddRow({label, util::FormatDouble(eval::Auc(scored)),
                  util::FormatDouble(n_x86 ? mean_x86 / n_x86 : 0.0, 2),
                  util::FormatDouble(n_ppc ? mean_ppc / n_ppc : 0.0, 2)});
  }
  std::fputs(table.ToString().c_str(), stdout);
  table.WriteCsv(bench::OutDir() + "/ablation_beta.csv");
  return 0;
}

}  // namespace
}  // namespace asteria

int main(int argc, char** argv) { return asteria::Run(argc, argv); }
