// Figure 10(a): cumulative distribution of AST sizes in the OpenSSL-like
// corpus. The paper reports <20: 48.6%, <40: 65.1%, <80: 85.4%, <200: 97.4%.
// CSV: bench_out/fig10a_cdf.csv.
#include <algorithm>
#include <cstdio>

#include "common.h"
#include "util/table.h"

namespace asteria {
namespace {

int Run(int argc, char** argv) {
  util::Flags flags;
  bench::DefineCommonFlags(&flags);
  if (!flags.Parse(argc, argv)) return 1;
  bench::ApplyCommonFlags(flags);

  dataset::CorpusConfig config;
  config.packages = static_cast<int>(flags.GetInt("packages"));
  config.seed = static_cast<std::uint64_t>(flags.GetInt("seed")) + 404;
  dataset::Corpus corpus = dataset::BuildCorpus(config);

  std::vector<int> sizes;
  for (const dataset::CorpusFunction& fn : corpus.functions) {
    sizes.push_back(fn.ast_size);
  }
  std::sort(sizes.begin(), sizes.end());
  if (sizes.empty()) return 1;

  auto fraction_below = [&](int bound) {
    const auto it = std::lower_bound(sizes.begin(), sizes.end(), bound);
    return 100.0 * static_cast<double>(it - sizes.begin()) /
           static_cast<double>(sizes.size());
  };

  std::printf("\n== Figure 10(a): AST size CDF (%zu ASTs) ==\n\n",
              sizes.size());
  util::TextTable table({"size <", "fraction (%)", "paper (%)"});
  table.AddRow({"20", util::FormatDouble(fraction_below(20), 1), "48.6"});
  table.AddRow({"40", util::FormatDouble(fraction_below(40), 1), "65.1"});
  table.AddRow({"80", util::FormatDouble(fraction_below(80), 1), "85.4"});
  table.AddRow({"200", util::FormatDouble(fraction_below(200), 1), "97.4"});
  std::fputs(table.ToString().c_str(), stdout);
  std::printf("\nmin=%d median=%d max=%d\n", sizes.front(),
              sizes[sizes.size() / 2], sizes.back());

  util::TextTable cdf({"size", "cumulative_fraction"});
  for (int bound = 0; bound <= std::min(sizes.back(), 400); bound += 5) {
    cdf.AddRow({std::to_string(bound),
                util::FormatDouble(fraction_below(bound) / 100.0, 5)});
  }
  cdf.WriteCsv(flags.GetString("out") + "/fig10a_cdf.csv");
  return 0;
}

}  // namespace
}  // namespace asteria

int main(int argc, char** argv) { return asteria::Run(argc, argv); }
