// Figure 8: model performance across embedding sizes (paper: 8..128; best
// AUC 0.985 at 16, lowest 0.976 at 128).
//
// Retrains the Tree-LSTM for each size on the same split and reports the
// best test AUC over epochs (the paper takes the best epoch), plus the
// per-epoch loss/AUC curve (§IV-E2a). CSV: bench_out/fig8_embedding.csv,
// fig8_epochs.csv.
#include <cstdio>

#include "common.h"
#include "util/table.h"
#include "util/timer.h"

namespace asteria {
namespace {

int Run(int argc, char** argv) {
  util::Flags flags;
  // Cheaper sweep defaults: the 128-dim point costs 64x the 16-dim point.
  flags.DefineInt("packages", 8, "corpus packages (sweep default)");
  flags.DefineInt("pairs_per_comb", 50, "pairs per combination (sweep default)");
  flags.DefineInt("epochs", 3, "epochs per size (sweep default)");
  bench::DefineCommonFlags(&flags);
  flags.DefineString("sizes", "8,16,32,64,128", "embedding sizes to sweep");
  if (!flags.Parse(argc, argv)) return 1;
  bench::ApplyCommonFlags(flags);
  bench::ExperimentSetup setup = bench::BuildSetup(flags);
  const int epochs = static_cast<int>(flags.GetInt("epochs"));

  std::vector<int> sizes;
  {
    const std::string& spec = flags.GetString("sizes");
    std::size_t start = 0;
    while (start < spec.size()) {
      std::size_t comma = spec.find(',', start);
      if (comma == std::string::npos) comma = spec.size();
      sizes.push_back(std::stoi(spec.substr(start, comma - start)));
      start = comma + 1;
    }
  }

  std::printf("\n== Figure 8: embedding size sweep ==\n\n");
  util::TextTable table({"embedding", "best AUC", "last AUC", "weights",
                         "train time"});
  util::TextTable epochs_csv({"embedding", "epoch", "loss", "test_auc"});
  for (int size : sizes) {
    core::AsteriaConfig config;
    config.siamese.encoder.embedding_dim = size;
    config.siamese.encoder.hidden_dim = size;
    config.siamese.use_fast_encoder = flags.GetBool("fast_encoder");
    config.seed = static_cast<std::uint64_t>(flags.GetInt("seed"));
    core::AsteriaModel model(config);
    util::Rng rng(static_cast<std::uint64_t>(flags.GetInt("seed")) + size);
    util::Timer timer;
    double best_auc = 0.0, last_auc = 0.0;
    for (int epoch = 0; epoch < epochs; ++epoch) {
      const auto losses = bench::TrainAsteria(&model, setup, 1, &rng);
      const double auc = eval::Auc(
          bench::ScoreAsteria(model, setup.corpus, setup.test, true));
      best_auc = std::max(best_auc, auc);
      last_auc = auc;
      epochs_csv.AddRow({std::to_string(size), std::to_string(epoch),
                         util::FormatDouble(losses[0], 5),
                         util::FormatDouble(auc)});
    }
    table.AddRow({std::to_string(size), util::FormatDouble(best_auc),
                  util::FormatDouble(last_auc),
                  std::to_string(model.TotalWeights()),
                  util::FormatSeconds(timer.ElapsedSeconds())});
  }
  std::fputs(table.ToString().c_str(), stdout);
  std::printf("\n(paper: AUC peaks at embedding size 16 and dips at 128)\n");
  table.WriteCsv(bench::OutDir() + "/fig8_embedding.csv");
  epochs_csv.WriteCsv(bench::OutDir() + "/fig8_epochs.csv");
  return 0;
}

}  // namespace
}  // namespace asteria

int main(int argc, char** argv) { return asteria::Run(argc, argv); }
