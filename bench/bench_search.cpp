// Batched TopK throughput: packed/pruned sweep vs per-query brute force.
//
// The workload of §V at firmware scale: one index holding tens of
// thousands of encoded functions, queried in batches. "Brute" is
// SearchIndex::TopKReference — the pre-packing implementation that scores
// every entry one pair at a time. "Batch" is TopKBatch — the packed encode
// matrix swept once per batch with blocked-GEMM scoring and the exact
// callee-distance prefilter. The bench asserts the two return bitwise
// identical hits (same entries, same score bits, same order) before it
// reports any timing, so the speedup can never come from a wrong answer.
//
// Entries are synthetic encodings (AddEncoded, no per-entry model run) so
// a >= 50k-entry index builds in milliseconds; queries are real ASTs
// through the real encoder.
//
// CSV: bench_out/search.csv
//   entries, batch, topk, threads, brute_nanos_per_query,
//   batch_nanos_per_query, speedup, scored_fraction, bitwise_identical
// stdout also carries a machine-readable line for scripts/bench_search.sh:
//   entries=... batch=... brute_nanos_per_query=... batch_nanos_per_query=...
//   speedup=... bitwise_identical=...
#include <cstdio>
#include <string>
#include <sys/stat.h>
#include <vector>

#include "common.h"
#include "core/search_index.h"
#include "util/log.h"
#include "util/metrics.h"
#include "util/rng.h"
#include "util/timer.h"

namespace asteria {
namespace {

ast::Ast QueryTree(int variant) {
  // (block (asg x (num)) (return (add|mul (x) (num+variant)))) — enough
  // structural variety that every query encodes differently.
  ast::Ast tree;
  auto v1 = tree.AddVar("x");
  auto n1 = tree.AddNum(3 + variant % 5);
  auto asg = tree.AddNode(ast::NodeKind::kAsg, {v1, n1});
  auto v2 = tree.AddVar("x");
  auto n2 = tree.AddNum(4 + variant);
  ast::NodeId inner;
  if (variant % 2 == 0) {
    inner = tree.AddNode(ast::NodeKind::kAdd, {v2, n2});
  } else {
    inner = tree.AddNode(ast::NodeKind::kMul, {v2, n2});
  }
  auto ret = tree.AddNode(ast::NodeKind::kReturn, {inner});
  auto block = tree.AddNode(ast::NodeKind::kBlock, {asg, ret});
  tree.set_root(block);
  return tree;
}

bool SameHits(const std::vector<core::SearchHit>& a,
              const std::vector<core::SearchHit>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].index != b[i].index || a[i].name != b[i].name ||
        a[i].score != b[i].score) {
      return false;
    }
  }
  return true;
}

int Run(int argc, char** argv) {
  util::Flags flags;
  bench::DefineObservabilityFlags(&flags);
  flags.DefineInt("entries", 50000, "synthetic index size");
  flags.DefineInt("batch", 32, "queries per batch (>= 16 for the gate)");
  flags.DefineInt("topk", 10, "k per query");
  flags.DefineInt("threads", 1, "worker threads for both paths");
  flags.DefineInt("hidden", 16, "encoder embedding/hidden size");
  flags.DefineInt("reps", 3, "timed repetitions of the batched sweep");
  flags.DefineString("out", "bench_out", "CSV output directory");
  if (!flags.Parse(argc, argv)) return 1;
  bench::ApplyCommonFlags(flags);

  const int entries = static_cast<int>(flags.GetInt("entries"));
  const int batch = static_cast<int>(flags.GetInt("batch"));
  const int topk = static_cast<int>(flags.GetInt("topk"));
  const int threads = static_cast<int>(flags.GetInt("threads"));
  const int reps = static_cast<int>(flags.GetInt("reps"));

  core::AsteriaConfig config;
  config.siamese.encoder.embedding_dim =
      static_cast<int>(flags.GetInt("hidden"));
  config.siamese.encoder.hidden_dim = config.siamese.encoder.embedding_dim;
  core::AsteriaModel model(config);

  // Synthetic corpus: spread encodings, callee counts uniform in [0, 64).
  core::SearchIndex index(model, threads);
  util::Rng rng(0xbe5c4a11dULL);
  const int h = config.siamese.encoder.hidden_dim;
  util::Timer build_timer;
  for (int i = 0; i < entries; ++i) {
    nn::Matrix enc(h, 1);
    for (int r = 0; r < h; ++r) {
      enc(r, 0) = static_cast<double>(rng.NextBounded(2000)) / 1000.0 - 1.0;
    }
    if (index.AddEncoded("fn" + std::to_string(i), enc,
                         static_cast<int>(rng.NextBounded(64))) < 0) {
      std::fprintf(stderr, "AddEncoded rejected entry %d\n", i);
      return 1;
    }
  }
  ASTERIA_LOG(Info) << "built synthetic index: " << index.size()
                    << " entries in " << build_timer.ElapsedSeconds() << "s";

  std::vector<core::FunctionFeature> queries(static_cast<std::size_t>(batch));
  for (int q = 0; q < batch; ++q) {
    queries[static_cast<std::size_t>(q)].name = "query" + std::to_string(q);
    queries[static_cast<std::size_t>(q)].tree =
        core::AsteriaModel::Preprocess(QueryTree(q));
    queries[static_cast<std::size_t>(q)].callee_count =
        static_cast<int>(rng.NextBounded(64));
  }
  std::vector<const core::FunctionFeature*> query_ptrs;
  for (const core::FunctionFeature& q : queries) query_ptrs.push_back(&q);
  const std::vector<int> ks(queries.size(), topk);

  // Correctness first: the batched sweep must be bitwise identical to the
  // brute-force reference for every query (this also warms both paths).
  const auto batch_hits = index.TopKBatch(query_ptrs, ks);
  bool identical = true;
  for (int q = 0; q < batch; ++q) {
    const auto brute =
        index.TopKReference(queries[static_cast<std::size_t>(q)], topk);
    if (!SameHits(batch_hits[static_cast<std::size_t>(q)], brute)) {
      identical = false;
      std::fprintf(stderr, "MISMATCH: query %d differs from brute force\n", q);
    }
  }

  // Brute-force baseline: per-query scoring of every entry (the pre-packing
  // online path), timed over the whole batch.
  util::Timer brute_timer;
  for (const core::FunctionFeature& q : queries) {
    const auto hits = index.TopKReference(q, topk);
    if (hits.size() != static_cast<std::size_t>(topk)) {
      std::fprintf(stderr, "brute path returned %zu hits\n", hits.size());
      return 1;
    }
  }
  const double brute_nanos_per_query =
      static_cast<double>(brute_timer.ElapsedNanos()) / batch;

  // Batched packed sweep, best-of-reps to shave scheduler noise.
  double batch_nanos_total = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    util::Timer batch_timer;
    const auto hits = index.TopKBatch(query_ptrs, ks);
    batch_nanos_total += static_cast<double>(batch_timer.ElapsedNanos());
    if (hits.size() != queries.size()) return 1;
  }
  const double batch_nanos_per_query =
      batch_nanos_total / (static_cast<double>(reps) * batch);
  const double speedup = brute_nanos_per_query / batch_nanos_per_query;

  // How much of the brute-force work the prefilter actually skipped.
  const util::MetricsSnapshot snapshot = util::SnapshotMetrics();
  double scored = 0.0, pruned = 0.0;
  for (const util::CounterValue& counter : snapshot.counters) {
    if (counter.name == "search.scored_pairs") {
      scored = static_cast<double>(counter.value);
    } else if (counter.name == "search.pruned_pairs") {
      pruned = static_cast<double>(counter.value);
    }
  }
  const double scored_fraction =
      scored + pruned > 0.0 ? scored / (scored + pruned) : 1.0;

  ::mkdir(bench::OutDir().c_str(), 0755);
  const std::string csv_path = bench::OutDir() + "/search.csv";
  if (std::FILE* csv = std::fopen(csv_path.c_str(), "w")) {
    std::fprintf(csv,
                 "entries,batch,topk,threads,brute_nanos_per_query,"
                 "batch_nanos_per_query,speedup,scored_fraction,"
                 "bitwise_identical\n");
    std::fprintf(csv, "%d,%d,%d,%d,%.0f,%.0f,%.2f,%.4f,%d\n", entries, batch,
                 topk, threads, brute_nanos_per_query, batch_nanos_per_query,
                 speedup, scored_fraction, identical ? 1 : 0);
    std::fclose(csv);
  }
  std::printf(
      "entries=%d batch=%d topk=%d threads=%d brute_nanos_per_query=%.0f "
      "batch_nanos_per_query=%.0f speedup=%.2f scored_fraction=%.4f "
      "bitwise_identical=%d\n",
      entries, batch, topk, threads, brute_nanos_per_query,
      batch_nanos_per_query, speedup, scored_fraction, identical ? 1 : 0);
  return identical ? 0 : 1;
}

}  // namespace
}  // namespace asteria

int main(int argc, char** argv) { return asteria::Run(argc, argv); }
