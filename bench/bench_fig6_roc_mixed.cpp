// Figure 6: ROC curves in the mixed cross-architecture evaluation.
//
// Trains ASTERIA's Tree-LSTM and the Gemini baseline on the mixed-arch
// train split, scores the test split with ASTERIA (calibrated),
// ASTERIA-WOC (no calibration), Gemini (cosine over structure2vec) and
// Diaphora (prime products), and prints AUC + TPR@5%FPR per method plus the
// ROC series (CSV: bench_out/fig6_roc.csv).
#include <cstdio>

#include "common.h"
#include "util/log.h"
#include "util/table.h"

namespace asteria {
namespace {

int Run(int argc, char** argv) {
  util::Flags flags;
  bench::DefineCommonFlags(&flags);
  if (!flags.Parse(argc, argv)) return 1;
  bench::ApplyCommonFlags(flags);
  bench::ExperimentSetup setup = bench::BuildSetup(flags);
  const int epochs = static_cast<int>(flags.GetInt("epochs"));
  util::Rng rng(static_cast<std::uint64_t>(flags.GetInt("seed")));

  core::AsteriaConfig asteria_config;
  bench::ApplyEncoderFlags(flags, &asteria_config);
  asteria_config.seed = static_cast<std::uint64_t>(flags.GetInt("seed"));
  core::AsteriaModel asteria_model(asteria_config);
  bench::TrainAsteria(&asteria_model, setup, epochs, &rng);

  baselines::GeminiConfig gemini_config;
  util::Rng gemini_rng(static_cast<std::uint64_t>(flags.GetInt("seed")) + 1);
  baselines::GeminiModel gemini(gemini_config, gemini_rng);
  bench::TrainGemini(&gemini, setup, epochs, &rng);

  struct Method {
    const char* name;
    std::vector<eval::Scored> scored;
  };
  std::vector<Method> methods;
  methods.push_back({"ASTERIA", bench::ScoreAsteria(asteria_model,
                                                    setup.corpus, setup.test,
                                                    /*calibrated=*/true)});
  methods.push_back({"ASTERIA-WOC",
                     bench::ScoreAsteria(asteria_model, setup.corpus,
                                         setup.test, /*calibrated=*/false)});
  methods.push_back({"Gemini",
                     bench::ScoreGemini(gemini, setup.corpus, setup.test)});
  methods.push_back({"Diaphora",
                     bench::ScoreDiaphora(setup.corpus, setup.test)});

  std::printf("\n== Figure 6: mixed cross-architecture ROC ==\n");
  std::printf("(paper: ASTERIA 0.985 AUC > Gemini by ~7.5%%, > Diaphora by ~82.7%%;\n");
  std::printf(" TPR@5%%FPR: ASTERIA 93.2%% vs Gemini 55.2%%)\n\n");
  util::TextTable table({"method", "AUC", "TPR@5%FPR", "TPR@10%FPR"});
  util::TextTable curves({"method", "fpr", "tpr"});
  for (const Method& method : methods) {
    const eval::RocResult roc = eval::ComputeRoc(method.scored);
    table.AddRow({method.name, util::FormatDouble(roc.auc),
                  util::FormatDouble(eval::TprAtFpr(roc, 0.05)),
                  util::FormatDouble(eval::TprAtFpr(roc, 0.10))});
    for (const eval::RocPoint& point : roc.points) {
      curves.AddRow({method.name, util::FormatDouble(point.fpr, 5),
                     util::FormatDouble(point.tpr, 5)});
    }
  }
  std::fputs(table.ToString().c_str(), stdout);
  curves.WriteCsv(bench::OutDir() + "/fig6_roc.csv");
  table.WriteCsv(bench::OutDir() + "/fig6_auc.csv");
  std::printf("\nROC series written to %s/fig6_roc.csv\n",
              bench::OutDir().c_str());
  return 0;
}

}  // namespace
}  // namespace asteria

int main(int argc, char** argv) { return asteria::Run(argc, argv); }
