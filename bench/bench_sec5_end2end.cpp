// §V end-to-end comparison: time and top-10 retrieval accuracy of ASTERIA
// vs Gemini for the vulnerable-function search.
//
// For each CVE query we rank all firmware functions by similarity and check
// whether genuinely vulnerable instances appear in the top 10 (the paper:
// ASTERIA 78.7% top-10 accuracy @ 0.414 s/pair end-to-end, Gemini 20% @
// 0.159 s/pair with most true hits ranked beyond 10000).
// CSV: bench_out/sec5_end2end.csv.
#include <algorithm>
#include <cstdio>

#include "common.h"
#include "compiler/compile.h"
#include "decompiler/decompile.h"
#include "firmware/search.h"
#include "minic/parser.h"
#include "minic/sema.h"
#include "util/table.h"
#include "util/timer.h"

namespace asteria {
namespace {

int Run(int argc, char** argv) {
  util::Flags flags;
  bench::DefineCommonFlags(&flags);
  flags.DefineInt("images", 30, "number of firmware images");
  if (!flags.Parse(argc, argv)) return 1;
  bench::ApplyCommonFlags(flags);
  bench::ExperimentSetup setup = bench::BuildSetup(flags);
  const int epochs = static_cast<int>(flags.GetInt("epochs"));
  util::Rng rng(static_cast<std::uint64_t>(flags.GetInt("seed")) + 8);

  core::AsteriaConfig config;
  bench::ApplyEncoderFlags(flags, &config);
  core::AsteriaModel asteria_model(config);
  bench::TrainAsteria(&asteria_model, setup, epochs, &rng);
  baselines::GeminiConfig gemini_config;
  util::Rng gemini_rng(9);
  baselines::GeminiModel gemini(gemini_config, gemini_rng);
  bench::TrainGemini(&gemini, setup, epochs, &rng);

  firmware::FirmwareCorpusConfig fw_config;
  fw_config.images = static_cast<int>(flags.GetInt("images"));
  fw_config.seed = static_cast<std::uint64_t>(flags.GetInt("seed")) + 55;
  fw_config.software_probability = 1.0;
  firmware::FirmwareCorpus corpus = firmware::BuildFirmwareCorpus(fw_config);

  // Pre-extract Gemini ACFGs for every firmware function, walking modules
  // in the same order the corpus builder decompiled them so indices align.
  std::vector<cfg::Acfg> acfgs;
  std::vector<int> acfg_index_of_function;
  {
    std::size_t fn_cursor = 0;
    for (std::size_t img = 0; img < corpus.images.size(); ++img) {
      for (const binary::BinModule& module : corpus.images[img].modules) {
        auto decompiled = decompiler::DecompileModule(module);
        for (std::size_t f = 0; f < decompiled.size(); ++f) {
          if (decompiled[f].tree.size() < 5) continue;
          acfgs.push_back(cfg::BuildAcfg(module.functions[f]));
          acfg_index_of_function.push_back(static_cast<int>(acfgs.size()) - 1);
          ++fn_cursor;
        }
      }
    }
    if (fn_cursor != corpus.functions.size()) {
      std::fprintf(stderr, "alignment mismatch: %zu vs %zu\n", fn_cursor,
                   corpus.functions.size());
      return 1;
    }
  }

  util::TextTable table({"method", "top-10 accuracy", "offline s/fn",
                         "online s/pair", "queries"});
  struct MethodResult {
    double accuracy;
    double offline_per_fn;
    double online_per_pair;
  };

  auto evaluate = [&](bool use_asteria) {
    util::Timer offline_timer;
    std::vector<nn::Matrix> encodings;
    if (use_asteria) {
      for (const firmware::FirmwareFunction& fn : corpus.functions) {
        encodings.push_back(asteria_model.Encode(fn.feature.tree));
      }
    } else {
      for (std::size_t i = 0; i < corpus.functions.size(); ++i) {
        encodings.push_back(gemini.Encode(
            acfgs[static_cast<std::size_t>(acfg_index_of_function[i])]));
      }
    }
    const double offline = offline_timer.ElapsedSeconds() /
                           static_cast<double>(corpus.functions.size());

    int hits = 0, queries = 0;
    util::Timer online_timer;
    std::size_t comparisons = 0;
    for (const firmware::VulnSpec& spec : firmware::VulnLibrary()) {
      // Is at least one true instance present at all?
      bool present = false;
      for (const firmware::FirmwareFunction& fn : corpus.functions) {
        if (fn.truth_cve == spec.cve && !fn.patched) present = true;
      }
      if (!present) continue;
      ++queries;
      minic::Program program;
      std::string error;
      if (!minic::Parse(spec.vulnerable_source, &program, &error)) continue;
      auto compiled = compiler::CompileProgram(
          program, static_cast<binary::Isa>(firmware::kQueryIsa),
          spec.software);
      const int fn_index = compiled.module.FindFunction(spec.function);
      auto query = decompiler::DecompileFunction(compiled.module, fn_index);
      nn::Matrix query_encoding;
      if (use_asteria) {
        query_encoding = asteria_model.Encode(
            ast::ToLeftChildRightSibling(query.tree));
      } else {
        query_encoding = gemini.Encode(
            cfg::BuildAcfg(compiled.module.functions[static_cast<std::size_t>(fn_index)]));
      }
      std::vector<std::pair<double, std::size_t>> ranked;
      for (std::size_t i = 0; i < corpus.functions.size(); ++i) {
        double score;
        if (use_asteria) {
          score = core::CalibratedSimilarity(
              asteria_model.SimilarityFromEncodings(query_encoding,
                                                    encodings[i]),
              query.callee_count, corpus.functions[i].feature.callee_count);
        } else {
          score = baselines::GeminiModel::CosineSimilarity(query_encoding,
                                                           encodings[i]);
        }
        ranked.push_back({score, i});
        ++comparisons;
      }
      std::partial_sort(ranked.begin(),
                        ranked.begin() + std::min<std::size_t>(10, ranked.size()),
                        ranked.end(), std::greater<>());
      bool hit = false;
      for (std::size_t k = 0; k < std::min<std::size_t>(10, ranked.size()); ++k) {
        const firmware::FirmwareFunction& fn =
            corpus.functions[ranked[k].second];
        if (fn.truth_cve == spec.cve && !fn.patched) hit = true;
      }
      if (hit) ++hits;
    }
    const double online =
        comparisons ? online_timer.ElapsedSeconds() / static_cast<double>(comparisons) : 0.0;
    return MethodResult{queries ? 100.0 * hits / queries : 0.0, offline,
                        online};
  };

  const MethodResult asteria_result = evaluate(true);
  const MethodResult gemini_result = evaluate(false);
  std::printf("\n== Section V: end-to-end vulnerable-function retrieval ==\n\n");
  table.AddRow({"ASTERIA",
                util::FormatDouble(asteria_result.accuracy, 1) + "%",
                util::FormatSeconds(asteria_result.offline_per_fn),
                util::FormatSeconds(asteria_result.online_per_pair), "7"});
  table.AddRow({"Gemini", util::FormatDouble(gemini_result.accuracy, 1) + "%",
                util::FormatSeconds(gemini_result.offline_per_fn),
                util::FormatSeconds(gemini_result.online_per_pair), "7"});
  std::fputs(table.ToString().c_str(), stdout);
  std::printf("\n(paper: ASTERIA 78.7%% vs Gemini 20%% top-10 accuracy)\n");
  table.WriteCsv(bench::OutDir() + "/sec5_end2end.csv");
  return 0;
}

}  // namespace
}  // namespace asteria

int main(int argc, char** argv) { return asteria::Run(argc, argv); }
