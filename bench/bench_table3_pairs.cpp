// Table III: number of function pairs per architecture combination used for
// model training and testing (after the node-count >= 5 filter).
// CSV: bench_out/table3_pairs.csv.
#include <cstdio>

#include "common.h"
#include "util/table.h"

namespace asteria {
namespace {

int Run(int argc, char** argv) {
  util::Flags flags;
  bench::DefineCommonFlags(&flags);
  if (!flags.Parse(argc, argv)) return 1;
  bench::ApplyCommonFlags(flags);

  dataset::CorpusConfig config;
  config.packages = static_cast<int>(flags.GetInt("packages"));
  config.seed = static_cast<std::uint64_t>(flags.GetInt("seed")) * 1000003 + 17;
  dataset::Corpus corpus = dataset::BuildCorpus(config);
  util::Rng rng(config.seed ^ 0xabcdef);

  std::printf("\n== Table III: function pairs per architecture combination ==\n\n");
  util::TextTable table({"Arch-Comb", "# of pairs"});
  const std::pair<int, int> kCombos[] = {{0, 2}, {2, 3}, {0, 3},
                                         {2, 1}, {0, 1}, {3, 1}};
  std::size_t total = 0;
  for (const auto& [a, b] : kCombos) {
    const auto pairs = dataset::MakePairs(
        corpus, a, b, rng, static_cast<int>(flags.GetInt("pairs_per_comb")));
    const std::string name =
        std::string(binary::IsaName(static_cast<binary::Isa>(a))) + "-" +
        std::string(binary::IsaName(static_cast<binary::Isa>(b)));
    table.AddRow({name, std::to_string(pairs.size())});
    total += pairs.size();
  }
  table.AddRow({"Total", std::to_string(total)});
  std::fputs(table.ToString().c_str(), stdout);
  std::printf("\n(%d functions dropped by the node-count >= %d filter)\n",
              corpus.filtered_small, config.min_ast_size);
  table.WriteCsv(flags.GetString("out") + "/table3_pairs.csv");
  return 0;
}

}  // namespace
}  // namespace asteria

int main(int argc, char** argv) { return asteria::Run(argc, argv); }
