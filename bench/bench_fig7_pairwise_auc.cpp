// Figure 7: AUCs for ASTERIA, ASTERIA-WOC, Gemini and Diaphora in the six
// pair-wise cross-architecture evaluations (ARM-PPC, ARM-x64, PPC-x64,
// x86-ARM, x86-PPC, x86-x64).
//
// Models are trained once on the mixed split (as in the paper) and then
// evaluated on per-combination test subsets. CSV: bench_out/fig7_auc.csv.
#include <cstdio>

#include "common.h"
#include "util/table.h"

namespace asteria {
namespace {

int Run(int argc, char** argv) {
  util::Flags flags;
  bench::DefineCommonFlags(&flags);
  if (!flags.Parse(argc, argv)) return 1;
  bench::ApplyCommonFlags(flags);
  bench::ExperimentSetup setup = bench::BuildSetup(flags);
  const int epochs = static_cast<int>(flags.GetInt("epochs"));
  util::Rng rng(static_cast<std::uint64_t>(flags.GetInt("seed")));

  core::AsteriaConfig asteria_config;
  bench::ApplyEncoderFlags(flags, &asteria_config);
  core::AsteriaModel asteria_model(asteria_config);
  bench::TrainAsteria(&asteria_model, setup, epochs, &rng);

  baselines::GeminiConfig gemini_config;
  util::Rng gemini_rng(7);
  baselines::GeminiModel gemini(gemini_config, gemini_rng);
  bench::TrainGemini(&gemini, setup, epochs, &rng);

  // The paper's combination order.
  const std::pair<int, int> kCombos[] = {{2, 3}, {2, 1}, {3, 1},
                                         {0, 2}, {0, 3}, {0, 1}};
  std::printf("\n== Figure 7: pair-wise cross-architecture AUCs ==\n\n");
  util::TextTable table(
      {"combination", "ASTERIA", "ASTERIA-WOC", "Gemini", "Diaphora", "#pairs"});
  for (const auto& [isa_a, isa_b] : kCombos) {
    const auto pairs =
        bench::FilterPairs(setup.corpus, setup.test, isa_a, isa_b);
    if (pairs.empty()) continue;
    const double asteria_auc =
        eval::Auc(bench::ScoreAsteria(asteria_model, setup.corpus, pairs, true));
    const double woc_auc =
        eval::Auc(bench::ScoreAsteria(asteria_model, setup.corpus, pairs, false));
    const double gemini_auc =
        eval::Auc(bench::ScoreGemini(gemini, setup.corpus, pairs));
    const double diaphora_auc =
        eval::Auc(bench::ScoreDiaphora(setup.corpus, pairs));
    const std::string name =
        std::string(binary::IsaName(static_cast<binary::Isa>(isa_a))) + "-" +
        std::string(binary::IsaName(static_cast<binary::Isa>(isa_b)));
    table.AddRow({name, util::FormatDouble(asteria_auc),
                  util::FormatDouble(woc_auc), util::FormatDouble(gemini_auc),
                  util::FormatDouble(diaphora_auc),
                  std::to_string(pairs.size())});
  }
  std::fputs(table.ToString().c_str(), stdout);
  table.WriteCsv(bench::OutDir() + "/fig7_auc.csv");
  return 0;
}

}  // namespace
}  // namespace asteria

int main(int argc, char** argv) { return asteria::Run(argc, argv); }
