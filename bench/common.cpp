#include "common.h"

#include <cstdio>
#include <cstdlib>
#include <unordered_map>

#include "dataset/corpus_io.h"
#include "util/failpoint.h"
#include "util/log.h"
#include "util/metrics.h"
#include "util/table.h"
#include "util/timer.h"

namespace asteria::bench {

void DefineObservabilityFlags(util::Flags* flags) {
  flags->DefineString("log_level", "",
                      "minimum emitted log level (debug|info|warn|error); "
                      "empty keeps the default (info)");
  flags->DefineString("metrics_out", "",
                      "write the process metrics snapshot (counters, "
                      "histograms, span times) as JSON to this path on exit");
}

void DefineCommonFlags(util::Flags* flags) {
  DefineObservabilityFlags(flags);
  flags->DefineInt("packages", 12, "number of generated packages (Buildroot-like corpus)");
  flags->DefineInt("pairs_per_comb", 120, "max labeled pairs per ISA combination (0 = all)");
  flags->DefineInt("epochs", 5, "training epochs (paper: 60; defaults sized for one CPU core)");
  flags->DefineInt("seed", 1, "experiment seed");
  flags->DefineInt("embedding", 16, "Tree-LSTM embedding/hidden size");
  flags->DefineInt("hidden", 0,
                   "Tree-LSTM hidden size (0 = same as --embedding)");
  flags->DefineBool("fast_encoder", true,
                    "encode through the fused tape-free kernel (bitwise "
                    "identical to the tape path; 0 = autograd reference "
                    "path for A/B timing)");
  flags->DefineString("out", "bench_out", "CSV output directory");
  flags->DefineBool("quiet", false, "suppress progress logging");
  flags->DefineInt("threads", 1,
                   "worker threads for corpus generation and offline "
                   "encoding (deterministic: results are bitwise identical "
                   "for any value)");
  flags->DefineString("corpus_cache", "",
                      "path of a corpus snapshot to reuse (empty = rebuild "
                      "every run); a stale or corrupt snapshot is detected "
                      "by its config fingerprint/CRCs, quarantined, and "
                      "rebuilt");
  flags->DefineString("failpoints", "",
                      "fault-injection spec, e.g. 'store.write=once,"
                      "corpus.function=every:3' (see docs/ROBUSTNESS.md)");
}

namespace {
std::string g_out_dir = "bench_out";
std::string g_metrics_out;  // written by the atexit hook when non-empty
bool g_flags_applied = false;

void WriteMetricsAtExit() {
  if (g_metrics_out.empty()) return;
  std::string error;
  if (!util::SnapshotMetrics().WriteJson(g_metrics_out, &error)) {
    std::fprintf(stderr, "cannot write --metrics_out: %s\n", error.c_str());
  }
}
}  // namespace

std::string OutDir() { return g_out_dir; }

void ApplyCommonFlags(const util::Flags& flags) {
  if (g_flags_applied) return;
  g_flags_applied = true;
  if (flags.Has("out")) g_out_dir = flags.GetString("out");
  if (flags.Has("log_level")) {
    if (const std::string name = flags.GetString("log_level"); !name.empty()) {
      util::LogLevel level = util::LogLevel::kInfo;
      if (!util::ParseLogLevel(name, &level)) {
        std::fprintf(stderr,
                     "bad --log_level value '%s' (debug|info|warn|error)\n",
                     name.c_str());
        std::exit(2);
      }
      util::SetLogLevel(level);
    }
  }
  // --quiet outranks --log_level: scripts rely on it silencing progress.
  if (flags.Has("quiet") && flags.GetBool("quiet")) {
    util::SetLogLevel(util::LogLevel::kWarn);
  }
  if (flags.Has("failpoints")) {
    if (const std::string spec = flags.GetString("failpoints"); !spec.empty()) {
      std::string error;
      if (!util::ConfigureFailpoints(spec, &error)) {
        std::fprintf(stderr, "bad --failpoints spec: %s\n", error.c_str());
        std::exit(2);
      }
    }
  }
  if (flags.Has("metrics_out")) {
    g_metrics_out = flags.GetString("metrics_out");
    // atexit (not an eager write) so the snapshot reflects the whole run,
    // including whatever the bench does after BuildSetup.
    if (!g_metrics_out.empty()) std::atexit(WriteMetricsAtExit);
  }
}

void ApplyEncoderFlags(const util::Flags& flags, core::AsteriaConfig* config) {
  const int embedding = static_cast<int>(flags.GetInt("embedding"));
  const int hidden = static_cast<int>(flags.GetInt("hidden"));
  config->siamese.encoder.embedding_dim = embedding;
  config->siamese.encoder.hidden_dim = hidden > 0 ? hidden : embedding;
  config->siamese.use_fast_encoder = flags.GetBool("fast_encoder");
}

ExperimentSetup BuildSetup(const util::Flags& flags) {
  ApplyCommonFlags(flags);
  dataset::CorpusConfig config;
  config.packages = static_cast<int>(flags.GetInt("packages"));
  config.seed = static_cast<std::uint64_t>(flags.GetInt("seed")) * 1000003 + 17;
  config.threads = static_cast<int>(flags.GetInt("threads"));
  util::Timer timer;
  ExperimentSetup setup;
  setup.corpus =
      dataset::BuildOrLoadCorpus(config, flags.GetString("corpus_cache"));
  if (!setup.corpus.report.Clean()) {
    ASTERIA_LOG(Warn) << setup.corpus.report.Summary();
  }
  ASTERIA_LOG(Info) << "corpus: " << setup.corpus.functions.size()
                    << " functions from " << config.packages
                    << " packages x 4 ISAs in "
                    << util::FormatSeconds(timer.ElapsedSeconds());
  util::Rng rng(config.seed ^ 0xabcdef);
  auto pairs = dataset::MakeMixedPairs(
      setup.corpus, rng, static_cast<int>(flags.GetInt("pairs_per_comb")));
  dataset::SplitPairs(std::move(pairs), rng, &setup.train, &setup.test);
  ASTERIA_LOG(Info) << "pairs: " << setup.train.size() << " train / "
                    << setup.test.size() << " test (mixed cross-arch)";
  return setup;
}

std::vector<double> TrainAsteria(core::AsteriaModel* model,
                                 const ExperimentSetup& setup, int epochs,
                                 util::Rng* rng) {
  // Adapt corpus entries to the model's feature type (no copies of trees:
  // build a feature view once).
  std::vector<core::FunctionFeature> features;
  features.reserve(setup.corpus.functions.size());
  for (const dataset::CorpusFunction& fn : setup.corpus.functions) {
    core::FunctionFeature feature;
    feature.name = fn.package + "::" + fn.function;
    feature.tree = fn.preprocessed;
    feature.callee_count = fn.callee_count;
    features.push_back(std::move(feature));
  }
  std::vector<core::LabeledPair> pairs;
  pairs.reserve(setup.train.size());
  for (const dataset::CorpusPair& pair : setup.train) {
    pairs.push_back({pair.a, pair.b, pair.homologous});
  }
  std::vector<double> losses;
  for (int epoch = 0; epoch < epochs; ++epoch) {
    util::Timer timer;
    util::PipelineReport report;
    const double loss = model->TrainEpoch(features, pairs, *rng, &report);
    losses.push_back(loss);
    ASTERIA_LOG(Info) << "asteria epoch " << epoch << ": loss=" << loss
                      << " (" << util::FormatSeconds(timer.ElapsedSeconds())
                      << ")";
    if (report.failed > 0) {
      ASTERIA_LOG(Warn) << report.Summary();
    }
  }
  return losses;
}

std::vector<double> TrainGemini(baselines::GeminiModel* model,
                                const ExperimentSetup& setup, int epochs,
                                util::Rng* rng) {
  std::vector<double> losses;
  std::vector<dataset::CorpusPair> pairs = setup.train;
  for (int epoch = 0; epoch < epochs; ++epoch) {
    util::Timer timer;
    rng->Shuffle(pairs);
    double total = 0.0;
    for (const dataset::CorpusPair& pair : pairs) {
      const auto& a = setup.corpus.functions[static_cast<std::size_t>(pair.a)];
      const auto& b = setup.corpus.functions[static_cast<std::size_t>(pair.b)];
      total += model->TrainPair(a.acfg, b.acfg, pair.homologous ? 1 : -1);
    }
    const double loss = pairs.empty() ? 0.0 : total / static_cast<double>(pairs.size());
    losses.push_back(loss);
    ASTERIA_LOG(Info) << "gemini epoch " << epoch << ": loss=" << loss << " ("
                      << util::FormatSeconds(timer.ElapsedSeconds()) << ")";
  }
  return losses;
}

std::vector<eval::Scored> ScoreAsteria(
    const core::AsteriaModel& model, const dataset::Corpus& corpus,
    const std::vector<dataset::CorpusPair>& pairs, bool calibrated) {
  // Offline phase: encode each referenced function once.
  std::unordered_map<int, nn::Matrix> encodings;
  for (const dataset::CorpusPair& pair : pairs) {
    for (int idx : {pair.a, pair.b}) {
      if (!encodings.count(idx)) {
        encodings.emplace(
            idx, model.Encode(
                     corpus.functions[static_cast<std::size_t>(idx)].preprocessed));
      }
    }
  }
  std::vector<eval::Scored> scored;
  scored.reserve(pairs.size());
  for (const dataset::CorpusPair& pair : pairs) {
    double score = model.SimilarityFromEncodings(encodings.at(pair.a),
                                                 encodings.at(pair.b));
    if (calibrated) {
      score = core::CalibratedSimilarity(
          score,
          corpus.functions[static_cast<std::size_t>(pair.a)].callee_count,
          corpus.functions[static_cast<std::size_t>(pair.b)].callee_count);
    }
    scored.push_back({score, pair.homologous});
  }
  return scored;
}

std::vector<eval::Scored> ScoreGemini(
    const baselines::GeminiModel& model, const dataset::Corpus& corpus,
    const std::vector<dataset::CorpusPair>& pairs) {
  std::unordered_map<int, nn::Matrix> encodings;
  for (const dataset::CorpusPair& pair : pairs) {
    for (int idx : {pair.a, pair.b}) {
      if (!encodings.count(idx)) {
        encodings.emplace(
            idx,
            model.Encode(corpus.functions[static_cast<std::size_t>(idx)].acfg));
      }
    }
  }
  std::vector<eval::Scored> scored;
  scored.reserve(pairs.size());
  for (const dataset::CorpusPair& pair : pairs) {
    scored.push_back({baselines::GeminiModel::CosineSimilarity(
                          encodings.at(pair.a), encodings.at(pair.b)),
                      pair.homologous});
  }
  return scored;
}

std::vector<eval::Scored> ScoreDiaphora(
    const dataset::Corpus& corpus,
    const std::vector<dataset::CorpusPair>& pairs) {
  std::unordered_map<int, baselines::DiaphoraSignature> signatures;
  auto signature_of = [&](int idx) -> const baselines::DiaphoraSignature& {
    auto it = signatures.find(idx);
    if (it == signatures.end()) {
      const auto& fn = corpus.functions[static_cast<std::size_t>(idx)];
      // Label histogram (index = label = kind + 1) -> kind histogram.
      const std::vector<int> labels = fn.preprocessed.LabelHistogram();
      std::vector<int> kinds(ast::kNumNodeKinds, 0);
      for (int label = 1; label <= ast::kMaxNodeLabel; ++label) {
        kinds[static_cast<std::size_t>(label - 1)] =
            labels[static_cast<std::size_t>(label)];
      }
      it = signatures
               .emplace(idx, baselines::DiaphoraHashFromHistogram(kinds))
               .first;
    }
    return it->second;
  };
  std::vector<eval::Scored> scored;
  scored.reserve(pairs.size());
  for (const dataset::CorpusPair& pair : pairs) {
    scored.push_back({baselines::DiaphoraSimilarity(signature_of(pair.a),
                                                    signature_of(pair.b)),
                      pair.homologous});
  }
  return scored;
}

std::vector<dataset::CorpusPair> FilterPairs(
    const dataset::Corpus& corpus,
    const std::vector<dataset::CorpusPair>& pairs, int isa_a, int isa_b) {
  std::vector<dataset::CorpusPair> out;
  for (const dataset::CorpusPair& pair : pairs) {
    const int a = corpus.functions[static_cast<std::size_t>(pair.a)].isa;
    const int b = corpus.functions[static_cast<std::size_t>(pair.b)].isa;
    if ((a == isa_a && b == isa_b) || (a == isa_b && b == isa_a)) {
      out.push_back(pair);
    }
  }
  return out;
}

}  // namespace asteria::bench
