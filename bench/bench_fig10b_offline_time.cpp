// Figure 10(b): offline-phase time per function, bucketed by AST size:
//   A-D  decompilation        A-P  preprocessing      A-E  Tree-LSTM encoding
//   D-H  Diaphora AST hash    G-EX ACFG extraction    G-EN Gemini encoding
// The paper's qualitative result: Asteria's offline stages cost the most
// (decompile + sequential Tree-LSTM), Diaphora hashing is cheap, Gemini
// extraction/encoding in between. CSV: bench_out/fig10b_offline.csv.
//
// A second section measures the whole-corpus offline encoding phase
// (SearchIndex::AddAll) single- vs multi-threaded (--threads), asserts the
// embeddings and top-k results are bitwise identical, and writes the
// speedup to bench_out/fig10b_offline_threads.csv.
//
// A third section A/B-times the two encode kernels (autograd tape vs fused
// TreeLstmFastEncoder; docs/PERFORMANCE.md) on the same functions at the
// --embedding/--hidden shape, asserts their embeddings are bitwise
// identical, and writes encodes/sec + speedup to --encode_json. With
// --min_encode_speedup > 0 the run fails if the fused kernel is slower
// than that factor (the CI smoke gate in scripts/bench_encode.sh).
#include <cstdio>
#include <cstring>
#include <map>

#include "common.h"
#include "compiler/compile.h"
#include "core/search_index.h"
#include "decompiler/decompile.h"
#include "util/table.h"
#include "util/timer.h"

namespace asteria {
namespace {

struct Bucket {
  util::TimingStats decompile, preprocess, encode, diaphora, acfg_extract,
      gemini_encode;
};

int Run(int argc, char** argv) {
  util::Flags flags;
  bench::DefineCommonFlags(&flags);
  flags.DefineString("encode_json", "BENCH_encode.json",
                     "output path for the tape-vs-fused encode kernel "
                     "comparison (empty = skip that section)");
  flags.DefineDouble("min_encode_speedup", 0.0,
                     "fail unless the fused kernel beats the tape path by "
                     "at least this factor (0 = report only)");
  if (!flags.Parse(argc, argv)) return 1;
  bench::ApplyCommonFlags(flags);

  // Build raw modules (we need the machine code, not just the corpus
  // features, to time decompilation itself).
  dataset::GeneratorConfig generator_config;
  util::Rng rng(static_cast<std::uint64_t>(flags.GetInt("seed")) + 777);
  std::vector<binary::BinModule> modules;
  for (int pkg = 0; pkg < static_cast<int>(flags.GetInt("packages")); ++pkg) {
    minic::Program program = dataset::GenerateProgram(generator_config, rng);
    for (int isa = 0; isa < binary::kNumIsas; ++isa) {
      auto compiled = compiler::CompileProgram(
          program, static_cast<binary::Isa>(isa), "t" + std::to_string(pkg));
      if (compiled.ok) modules.push_back(std::move(compiled.module));
    }
  }

  core::AsteriaConfig model_config;
  bench::ApplyEncoderFlags(flags, &model_config);
  core::AsteriaModel model(model_config);
  util::Rng gemini_rng(3);
  baselines::GeminiConfig gemini_config;
  baselines::GeminiModel gemini(gemini_config, gemini_rng);

  std::map<int, Bucket> buckets;  // keyed by AST-size bucket upper bound
  auto bucket_of = [](int size) {
    for (int bound : {20, 40, 80, 150, 300}) {
      if (size < bound) return bound;
    }
    return 1000000;
  };

  std::vector<core::FunctionFeature> features;  // for the threading section
  util::Timer timer;
  for (const binary::BinModule& module : modules) {
    for (std::size_t f = 0; f < module.functions.size(); ++f) {
      // A-D: decompilation.
      timer.Reset();
      auto decompiled =
          decompiler::DecompileFunction(module, static_cast<int>(f));
      const double t_decompile = timer.ElapsedSeconds();
      if (decompiled.tree.size() < 5) continue;
      Bucket& bucket = buckets[bucket_of(decompiled.tree.size())];
      bucket.decompile.Add(t_decompile);
      // A-P: preprocessing (digitalization + LCRS).
      timer.Reset();
      const ast::BinaryAst tree = core::AsteriaModel::Preprocess(decompiled.tree);
      bucket.preprocess.Add(timer.ElapsedSeconds());
      // A-E: Tree-LSTM encoding.
      timer.Reset();
      (void)model.Encode(tree);
      bucket.encode.Add(timer.ElapsedSeconds());
      features.push_back({decompiled.name, tree, decompiled.callee_count});
      // D-H: Diaphora prime-product hash.
      timer.Reset();
      (void)baselines::DiaphoraHash(decompiled.tree);
      bucket.diaphora.Add(timer.ElapsedSeconds());
      // G-EX: ACFG extraction.
      timer.Reset();
      const cfg::Acfg acfg = cfg::BuildAcfg(module.functions[f]);
      bucket.acfg_extract.Add(timer.ElapsedSeconds());
      // G-EN: Gemini graph embedding.
      timer.Reset();
      (void)gemini.Encode(acfg);
      bucket.gemini_encode.Add(timer.ElapsedSeconds());
    }
  }

  std::printf("\n== Figure 10(b): offline time per function by AST size ==\n\n");
  util::TextTable table({"AST size", "A-D", "A-P", "A-E", "D-H", "G-EX",
                         "G-EN", "#fns"});
  for (const auto& [bound, bucket] : buckets) {
    const std::string label =
        bound == 1000000 ? ">=300" : "<" + std::to_string(bound);
    table.AddRow({label, util::FormatSeconds(bucket.decompile.mean()),
                  util::FormatSeconds(bucket.preprocess.mean()),
                  util::FormatSeconds(bucket.encode.mean()),
                  util::FormatSeconds(bucket.diaphora.mean()),
                  util::FormatSeconds(bucket.acfg_extract.mean()),
                  util::FormatSeconds(bucket.gemini_encode.mean()),
                  std::to_string(bucket.decompile.count())});
  }
  std::fputs(table.ToString().c_str(), stdout);
  std::printf("\n(paper shape: Tree-LSTM encoding ~ decompilation cost, both >> Diaphora hash)\n");
  table.WriteCsv(flags.GetString("out") + "/fig10b_offline.csv");

  // ---- parallel offline encoding (--threads) -----------------------------
  const int threads = static_cast<int>(flags.GetInt("threads"));
  std::printf("\n== Offline corpus encoding: 1 vs %d thread(s), %zu functions ==\n\n",
              threads, features.size());
  core::SearchIndex serial_index(model, 1);
  timer.Reset();
  serial_index.AddAll(features);
  const double serial_seconds = timer.ElapsedSeconds();
  core::SearchIndex parallel_index(model, threads);
  timer.Reset();
  parallel_index.AddAll(features);
  const double parallel_seconds = timer.ElapsedSeconds();

  // Determinism check: embeddings and top-k must be bitwise identical.
  bool identical = serial_index.size() == parallel_index.size();
  for (int i = 0; identical && i < serial_index.size(); ++i) {
    const nn::Matrix& a = serial_index.encoding(i);
    const nn::Matrix& b = parallel_index.encoding(i);
    identical = a.SameShape(b) &&
                std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
  }
  if (identical && !features.empty()) {
    const auto top_serial = serial_index.TopK(features.front(), 10);
    const auto top_parallel = parallel_index.TopK(features.front(), 10);
    identical = top_serial.size() == top_parallel.size();
    for (std::size_t i = 0; identical && i < top_serial.size(); ++i) {
      identical = top_serial[i].index == top_parallel[i].index &&
                  top_serial[i].score == top_parallel[i].score;
    }
  }

  const double speedup =
      parallel_seconds > 0 ? serial_seconds / parallel_seconds : 0.0;
  util::TextTable threads_table({"threads", "encode time", "speedup",
                                 "bitwise identical"});
  threads_table.AddRow({"1", util::FormatSeconds(serial_seconds), "1.00x",
                        "yes"});
  char speedup_text[32];
  std::snprintf(speedup_text, sizeof(speedup_text), "%.2fx", speedup);
  threads_table.AddRow({std::to_string(threads),
                        util::FormatSeconds(parallel_seconds), speedup_text,
                        identical ? "yes" : "NO"});
  std::fputs(threads_table.ToString().c_str(), stdout);
  threads_table.WriteCsv(flags.GetString("out") + "/fig10b_offline_threads.csv");
  if (!identical) {
    std::fprintf(stderr, "FAIL: parallel encodings diverge from serial\n");
    return 1;
  }

  // ---- encode kernel A/B: autograd tape vs fused (--encode_json) ---------
  const std::string encode_json = flags.GetString("encode_json");
  if (encode_json.empty() || features.empty()) return 0;

  // Two models from the same seed: identical weights, different kernels.
  core::AsteriaConfig tape_config = model_config;
  tape_config.siamese.use_fast_encoder = false;
  core::AsteriaModel tape_model(tape_config);
  core::AsteriaConfig fast_config = model_config;
  fast_config.siamese.use_fast_encoder = true;
  core::AsteriaModel fast_model(fast_config);

  // Enough repetitions for stable single-thread rates on small corpora.
  int repeats = 1;
  while (repeats * features.size() < 2000) repeats *= 2;

  auto encode_all = [&](const core::AsteriaModel& m) {
    timer.Reset();
    for (int rep = 0; rep < repeats; ++rep) {
      for (const core::FunctionFeature& feature : features) {
        (void)m.Encode(feature.tree);
      }
    }
    return timer.ElapsedSeconds();
  };
  (void)fast_model.Encode(features.front().tree);  // build fused copies
  const double tape_seconds = encode_all(tape_model);
  const double fast_seconds = encode_all(fast_model);

  bool kernel_identical = true;
  for (const core::FunctionFeature& feature : features) {
    const nn::Matrix a = tape_model.Encode(feature.tree);
    const nn::Matrix b = fast_model.Encode(feature.tree);
    if (!a.SameShape(b) ||
        std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) != 0) {
      kernel_identical = false;
      break;
    }
  }

  const std::size_t encodes = features.size() * static_cast<std::size_t>(repeats);
  const double tape_rate =
      tape_seconds > 0 ? static_cast<double>(encodes) / tape_seconds : 0.0;
  const double fast_rate =
      fast_seconds > 0 ? static_cast<double>(encodes) / fast_seconds : 0.0;
  const double kernel_speedup = tape_rate > 0 ? fast_rate / tape_rate : 0.0;

  std::printf("\n== Encode kernel: autograd tape vs fused (single thread) ==\n\n");
  util::TextTable kernel_table({"kernel", "encodes/sec", "speedup",
                                "bitwise identical"});
  char rate_text[32], fast_rate_text[32], kernel_speedup_text[32];
  std::snprintf(rate_text, sizeof(rate_text), "%.0f", tape_rate);
  std::snprintf(fast_rate_text, sizeof(fast_rate_text), "%.0f", fast_rate);
  std::snprintf(kernel_speedup_text, sizeof(kernel_speedup_text), "%.2fx",
                kernel_speedup);
  kernel_table.AddRow({"tape", rate_text, "1.00x", "-"});
  kernel_table.AddRow({"fused", fast_rate_text, kernel_speedup_text,
                       kernel_identical ? "yes" : "NO"});
  std::fputs(kernel_table.ToString().c_str(), stdout);

  if (std::FILE* json = std::fopen(encode_json.c_str(), "w")) {
    std::fprintf(json,
                 "{\n"
                 "  \"workload\": \"single-thread corpus encode\",\n"
                 "  \"functions\": %zu,\n"
                 "  \"repeats\": %d,\n"
                 "  \"embedding_dim\": %d,\n"
                 "  \"hidden_dim\": %d,\n"
                 "  \"tape_encodes_per_sec\": %.2f,\n"
                 "  \"fast_encodes_per_sec\": %.2f,\n"
                 "  \"speedup\": %.3f,\n"
                 "  \"bitwise_identical\": %s\n"
                 "}\n",
                 features.size(), repeats,
                 model_config.siamese.encoder.embedding_dim,
                 model_config.siamese.encoder.hidden_dim, tape_rate, fast_rate,
                 kernel_speedup, kernel_identical ? "true" : "false");
    std::fclose(json);
    std::printf("\nwrote %s\n", encode_json.c_str());
  } else {
    std::fprintf(stderr, "FAIL: cannot write %s\n", encode_json.c_str());
    return 1;
  }

  if (!kernel_identical) {
    std::fprintf(stderr, "FAIL: fused kernel diverges from tape path\n");
    return 1;
  }
  const double min_speedup = flags.GetDouble("min_encode_speedup");
  if (min_speedup > 0 && kernel_speedup < min_speedup) {
    std::fprintf(stderr, "FAIL: fused kernel speedup %.2fx < required %.2fx\n",
                 kernel_speedup, min_speedup);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace asteria

int main(int argc, char** argv) { return asteria::Run(argc, argv); }
