// Table IV: vulnerability search in the firmware dataset (§V).
//
// Pipeline: build the firmware corpus (planted CVE functions), train the
// model on a Buildroot-like corpus *plus* cross-ISA CVE pairs, pick the
// detection threshold via the Youden index on validation pairs (the paper
// lands on 0.84), search, and report per-CVE candidate/confirmed counts and
// affected vendor models. CSV: bench_out/table4_vuln.csv.
#include <cstdio>

#include "common.h"
#include "compiler/compile.h"
#include "decompiler/decompile.h"
#include "firmware/search.h"
#include "minic/parser.h"
#include "minic/sema.h"
#include "util/log.h"
#include "util/table.h"

namespace asteria {
namespace {

int Run(int argc, char** argv) {
  util::Flags flags;
  bench::DefineCommonFlags(&flags);
  flags.DefineInt("images", 40, "number of firmware images");
  flags.DefineString("encodings_cache", "",
                     "path of a firmware-encodings snapshot to reuse "
                     "(empty = encode every run); invalidated automatically "
                     "on model or corpus changes");
  if (!flags.Parse(argc, argv)) return 1;
  bench::ApplyCommonFlags(flags);
  bench::ExperimentSetup setup = bench::BuildSetup(flags);
  const int epochs = static_cast<int>(flags.GetInt("epochs"));
  util::Rng rng(static_cast<std::uint64_t>(flags.GetInt("seed")) + 5);

  core::AsteriaConfig config;
  bench::ApplyEncoderFlags(flags, &config);
  core::AsteriaModel model(config);
  bench::TrainAsteria(&model, setup, epochs, &rng);

  // Fine-tune on cross-ISA pairs of the CVE library itself (the paper's
  // model has seen OpenSSL-scale code; our corpus is synthetic, so give the
  // model the same advantage explicitly).
  std::vector<ast::BinaryAst> cve_trees;
  for (const firmware::VulnSpec& spec : firmware::VulnLibrary()) {
    for (int isa = 0; isa < binary::kNumIsas; ++isa) {
      minic::Program program;
      std::string error;
      if (!minic::Parse(spec.vulnerable_source, &program, &error)) continue;
      auto compiled = compiler::CompileProgram(
          program, static_cast<binary::Isa>(isa), spec.software);
      if (!compiled.ok) continue;
      const int fn = compiled.module.FindFunction(spec.function);
      auto decompiled = decompiler::DecompileFunction(compiled.module, fn);
      cve_trees.push_back(ast::ToLeftChildRightSibling(decompiled.tree));
    }
  }
  for (int round = 0; round < 10; ++round) {
    for (std::size_t i = 0; i < cve_trees.size(); ++i) {
      const std::size_t same_cve = (i / 4) * 4 + (i + 1) % 4;
      model.TrainPair(cve_trees[i], cve_trees[same_cve], true);
      const std::size_t other = (i + 4) % cve_trees.size();
      model.TrainPair(cve_trees[i], cve_trees[other], false);
    }
  }

  // Threshold via Youden index on the validation pairs (§V).
  const auto validation =
      bench::ScoreAsteria(model, setup.corpus, setup.test, true);
  const eval::RocResult roc = eval::ComputeRoc(validation);
  const double threshold = eval::YoudenThreshold(roc);
  ASTERIA_LOG(Info) << "validation AUC=" << roc.auc
                    << " Youden threshold=" << threshold
                    << " (paper: 0.84)";

  firmware::FirmwareCorpusConfig fw_config;
  fw_config.images = static_cast<int>(flags.GetInt("images"));
  fw_config.seed = static_cast<std::uint64_t>(flags.GetInt("seed")) + 99;
  firmware::FirmwareCorpus corpus = firmware::BuildFirmwareCorpus(fw_config);
  ASTERIA_LOG(Info) << "firmware corpus: " << corpus.images.size()
                    << " images, " << corpus.functions.size() << " functions";
  if (!corpus.report.Clean()) {
    ASTERIA_LOG(Warn) << corpus.report.Summary();
  }

  firmware::VulnSearchResult result = firmware::RunVulnSearchCached(
      model, corpus, threshold, /*beta=*/4, flags.GetString("encodings_cache"));

  std::printf("\n== Table IV: vulnerability search results ==\n");
  std::printf("(threshold %.3f from Youden index; paper found 75 vulnerable "
              "functions from 7 CVEs)\n\n", threshold);
  util::TextTable table({"CVE", "software", "vulnerable function",
                         "candidates", "crit-A", "crit-B", "confirmed",
                         "affected models"});
  for (const firmware::CveSearchResult& row : result.per_cve) {
    std::string models;
    for (std::size_t i = 0; i < row.affected_models.size(); ++i) {
      if (i) models += ", ";
      models += row.affected_models[i];
    }
    table.AddRow({row.cve, row.software, row.function,
                  std::to_string(row.candidates),
                  std::to_string(row.criteria_a),
                  std::to_string(row.criteria_b),
                  std::to_string(row.confirmed), models});
  }
  std::fputs(table.ToString().c_str(), stdout);
  int planted_vulnerable = 0;
  for (const firmware::FirmwareFunction& fn : corpus.functions) {
    if (!fn.truth_cve.empty() && !fn.patched) ++planted_vulnerable;
  }
  std::printf("\ntotal candidates: %d, total confirmed: %d / %d planted "
              "vulnerable instances\n",
              result.total_candidates, result.total_confirmed,
              planted_vulnerable);
  if (!result.report.Clean()) {
    std::printf("%s\n", result.report.Summary().c_str());
  }
  table.WriteCsv(bench::OutDir() + "/table4_vuln.csv");
  return 0;
}

}  // namespace
}  // namespace asteria

int main(int argc, char** argv) { return asteria::Run(argc, argv); }
