// Cold vs. warm start of the online phase (Fig. 10(c) scenario).
//
// The paper's workflow is encode-once/query-many, but a process restart
// used to pay the whole offline phase again. This bench quantifies what the
// index snapshot buys: "cold" builds the SearchIndex by re-encoding every
// corpus function; "warm" loads the persisted snapshot (names, callee
// counts, encodings — CRC-verified) and is ready to serve queries
// immediately. It also asserts the determinism contract across the process
// boundary: the loaded index must return bitwise-identical TopK results
// (scores and ordering) to the freshly built one for threads 1, 2, and 8.
//
// CSV: bench_out/fig10c_warm_start.csv
//   functions, cold_encode_seconds, warm_load_seconds, speedup,
//   bitwise_identical
#include <algorithm>
#include <cstdio>
#include <sys/stat.h>

#include "common.h"
#include "core/search_index.h"
#include "store/container.h"
#include "util/log.h"
#include "util/table.h"
#include "util/timer.h"

namespace asteria {
namespace {

bool SameHits(const std::vector<core::SearchHit>& a,
              const std::vector<core::SearchHit>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    // Bitwise score equality, exact rank order, same entries.
    if (a[i].index != b[i].index || a[i].name != b[i].name ||
        a[i].score != b[i].score) {
      return false;
    }
  }
  return true;
}

int Run(int argc, char** argv) {
  util::Flags flags;
  bench::DefineCommonFlags(&flags);
  flags.DefineInt("queries", 8, "query functions for the determinism check");
  flags.DefineInt("topk", 10, "k for the TopK determinism check");
  if (!flags.Parse(argc, argv)) return 1;
  bench::ApplyCommonFlags(flags);
  bench::ExperimentSetup setup = bench::BuildSetup(flags);

  core::AsteriaConfig config;
  bench::ApplyEncoderFlags(flags, &config);
  core::AsteriaModel model(config);

  std::vector<core::FunctionFeature> features;
  features.reserve(setup.corpus.functions.size());
  for (const dataset::CorpusFunction& fn : setup.corpus.functions) {
    core::FunctionFeature feature;
    feature.name = fn.package + "::" + fn.function + "@" +
                   std::to_string(fn.isa);
    feature.tree = fn.preprocessed;
    feature.callee_count = fn.callee_count;
    features.push_back(std::move(feature));
  }
  if (features.empty()) {
    std::fprintf(stderr, "empty corpus — nothing to index\n");
    return 1;
  }
  const int threads = static_cast<int>(flags.GetInt("threads"));

  // Cold start: the full offline phase (encode every function).
  util::Timer timer;
  core::SearchIndex cold(model, threads);
  const util::PipelineReport encode_report = cold.AddAll(features);
  const double cold_seconds = timer.ElapsedSeconds();
  if (!encode_report.Clean()) {
    ASTERIA_LOG(Warn) << encode_report.Summary();
  }
  ASTERIA_LOG(Info) << "cold start: encoded " << cold.size()
                    << " functions in " << cold_seconds << "s";

  mkdir(bench::OutDir().c_str(), 0755);
  const std::string snapshot_path = bench::OutDir() + "/fig10c_index.snapshot";
  std::string error;
  if (!cold.Save(snapshot_path, &error)) {
    std::fprintf(stderr, "snapshot save failed: %s\n", error.c_str());
    return 1;
  }

  // Warm start: load the snapshot (best of 3 to damp filesystem noise). A
  // corrupt snapshot is quarantined and rewritten from the in-memory index
  // rather than aborting the bench.
  double warm_seconds = 0.0;
  core::SearchIndex warm(model, threads);
  for (int run = 0; run < 3; ++run) {
    timer.Reset();
    if (!warm.Load(snapshot_path, &error)) {
      std::string quarantined;
      store::QuarantineFile(snapshot_path, &quarantined);
      ASTERIA_LOG(Warn) << "snapshot load failed (" << error
                        << "); quarantined to " << quarantined
                        << " and rewriting from the cold index";
      if (!cold.Save(snapshot_path, &error) ||
          !warm.Load(snapshot_path, &error)) {
        std::fprintf(stderr, "snapshot rebuild failed: %s\n", error.c_str());
        return 1;
      }
    }
    const double elapsed = timer.ElapsedSeconds();
    warm_seconds = run == 0 ? elapsed : std::min(warm_seconds, elapsed);
  }
  ASTERIA_LOG(Info) << "warm start: loaded " << warm.size() << " functions in "
                    << warm_seconds << "s";

  // Determinism across the process boundary: same TopK scores and ordering
  // from the loaded index as from the fresh one, for every thread count.
  bool identical = warm.size() == cold.size();
  const int queries = std::max<int>(
      1, std::min<int>(static_cast<int>(flags.GetInt("queries")),
                       static_cast<int>(features.size())));
  const int k = static_cast<int>(flags.GetInt("topk"));
  for (int thread_count : {1, 2, 8}) {
    cold.set_threads(thread_count);
    warm.set_threads(thread_count);
    for (int q = 0; q < queries; ++q) {
      const auto& query = features[static_cast<std::size_t>(q) *
                                   (features.size() / queries)];
      if (!SameHits(cold.TopK(query, k), warm.TopK(query, k))) {
        identical = false;
        ASTERIA_LOG(Error) << "TopK mismatch: query " << q << " threads="
                           << thread_count;
      }
    }
  }
  cold.set_threads(threads);

  const double speedup = warm_seconds > 0 ? cold_seconds / warm_seconds : 0.0;
  std::printf("\n== Fig. 10(c) cold vs. warm start ==\n");
  std::printf("corpus functions:   %d\n", cold.size());
  std::printf("cold (re-encode):   %.4fs\n", cold_seconds);
  std::printf("warm (snapshot):    %.4fs\n", warm_seconds);
  std::printf("speedup:            %.1fx\n", speedup);
  std::printf("bitwise identical:  %s (threads 1/2/8, %d queries, k=%d)\n",
              identical ? "yes" : "NO", queries, k);
  if (speedup < 10.0) {
    ASTERIA_LOG(Warn) << "warm start under 10x cold (" << speedup
                      << "x) — snapshot overhead dominates at this corpus "
                         "size; grow --packages";
  }

  util::TextTable table({"functions", "cold_encode_seconds",
                         "warm_load_seconds", "speedup", "bitwise_identical"});
  char cold_text[32], warm_text[32], speedup_text[32];
  std::snprintf(cold_text, sizeof(cold_text), "%.6f", cold_seconds);
  std::snprintf(warm_text, sizeof(warm_text), "%.6f", warm_seconds);
  std::snprintf(speedup_text, sizeof(speedup_text), "%.2f", speedup);
  table.AddRow({std::to_string(cold.size()), cold_text, warm_text,
                speedup_text, identical ? "yes" : "no"});
  table.WriteCsv(bench::OutDir() + "/fig10c_warm_start.csv");
  return identical ? 0 : 1;
}

}  // namespace
}  // namespace asteria

int main(int argc, char** argv) { return asteria::Run(argc, argv); }
