// Cross-architecture clone search: rank a corpus against a query function.
//
// Builds a corpus, trains briefly, then takes one x86 function as the query
// and ranks every ARM/PPC/x64 function by calibrated similarity — the
// library-function identification workflow from the paper's introduction.
//
//   ./build/examples/cross_arch_clone_search --packages=8 --topk=5
#include <algorithm>
#include <cstdio>

#include "core/asteria.h"
#include "core/search_index.h"
#include "dataset/corpus.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  using namespace asteria;
  util::Flags flags;
  flags.DefineInt("packages", 8, "corpus packages");
  flags.DefineInt("epochs", 4, "training epochs");
  flags.DefineInt("topk", 5, "results to show");
  flags.DefineInt("seed", 3, "seed");
  if (!flags.Parse(argc, argv)) return 1;

  dataset::CorpusConfig corpus_config;
  corpus_config.packages = static_cast<int>(flags.GetInt("packages"));
  corpus_config.seed = static_cast<std::uint64_t>(flags.GetInt("seed"));
  dataset::Corpus corpus = dataset::BuildCorpus(corpus_config);

  core::AsteriaConfig config;
  core::AsteriaModel model(config);
  util::Rng rng(corpus_config.seed + 2);
  std::vector<core::FunctionFeature> features;
  for (const dataset::CorpusFunction& fn : corpus.functions) {
    core::FunctionFeature feature;
    feature.name = fn.package + "::" + fn.function + "@" +
                   std::string(binary::IsaName(static_cast<binary::Isa>(fn.isa)));
    feature.tree = fn.preprocessed;
    feature.callee_count = fn.callee_count;
    features.push_back(std::move(feature));
  }
  std::vector<core::LabeledPair> train_pairs;
  {
    auto pairs = dataset::MakeMixedPairs(corpus, rng, 150);
    for (const auto& pair : pairs) {
      train_pairs.push_back({pair.a, pair.b, pair.homologous});
    }
  }
  std::printf("training on %zu pairs...\n", train_pairs.size());
  for (int epoch = 0; epoch < static_cast<int>(flags.GetInt("epochs"));
       ++epoch) {
    const double loss = model.TrainEpoch(features, train_pairs, rng);
    std::printf("  epoch %d loss=%.4f\n", epoch, loss);
  }

  // Query: first x86 function with a reasonably sized AST.
  int query = -1;
  for (std::size_t i = 0; i < corpus.functions.size(); ++i) {
    if (corpus.functions[i].isa == 0 && corpus.functions[i].ast_size >= 25) {
      query = static_cast<int>(i);
      break;
    }
  }
  if (query < 0) {
    std::fprintf(stderr, "no query candidate found\n");
    return 1;
  }
  std::printf("\nquery: %s (AST size %d)\n",
              features[static_cast<std::size_t>(query)].name.c_str(),
              corpus.functions[static_cast<std::size_t>(query)].ast_size);

  // Offline: encode the cross-arch corpus once into a SearchIndex; online:
  // one TopK query.
  core::SearchIndex index(model);
  std::vector<int> corpus_of_entry;  // index entry -> corpus function
  for (std::size_t i = 0; i < corpus.functions.size(); ++i) {
    if (corpus.functions[i].isa == 0) continue;  // cross-arch only
    index.Add(features[i]);
    corpus_of_entry.push_back(static_cast<int>(i));
  }
  const auto ranked = index.TopK(features[static_cast<std::size_t>(query)],
                                 static_cast<int>(flags.GetInt("topk")));

  std::printf("top %zu candidates:\n", ranked.size());
  const auto& query_fn = corpus.functions[static_cast<std::size_t>(query)];
  bool clone_in_topk = false;
  for (std::size_t k = 0; k < ranked.size(); ++k) {
    const auto& fn = corpus.functions[static_cast<std::size_t>(
        corpus_of_entry[static_cast<std::size_t>(ranked[k].index)])];
    const bool is_clone =
        fn.package == query_fn.package && fn.function == query_fn.function;
    clone_in_topk |= is_clone;
    std::printf("  %zu. %-28s score=%.4f %s\n", k + 1,
                ranked[k].name.c_str(), ranked[k].score,
                is_clone ? "<-- true clone" : "");
  }
  std::printf("%s\n", clone_in_topk ? "true cross-arch clones ranked in top-k"
                                    : "clones not in top-k (train longer)");
  return 0;
}
