// Train an ASTERIA model on a generated cross-architecture corpus and save
// the weights for reuse by other tools.
//
//   ./build/examples/train_model --packages=24 --epochs=8 --save=asteria.weights
//
// Prints per-epoch loss and the held-out AUC, then writes the weights.
#include <cstdio>

#include "core/asteria.h"
#include "dataset/corpus.h"
#include "eval/roc.h"
#include "util/flags.h"
#include "util/log.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace asteria;
  util::Flags flags;
  flags.DefineInt("packages", 16, "corpus packages");
  flags.DefineInt("pairs_per_comb", 250, "pairs per ISA combination");
  flags.DefineInt("epochs", 6, "training epochs");
  flags.DefineInt("embedding", 16, "embedding/hidden size");
  flags.DefineInt("seed", 7, "seed");
  flags.DefineString("save", "asteria.weights", "output weight file");
  flags.DefineString("load", "",
                     "warm-start from an existing checkpoint (container "
                     "format or legacy asteria-params v1)");
  if (!flags.Parse(argc, argv)) return 1;

  dataset::CorpusConfig corpus_config;
  corpus_config.packages = static_cast<int>(flags.GetInt("packages"));
  corpus_config.seed = static_cast<std::uint64_t>(flags.GetInt("seed"));
  util::Timer timer;
  dataset::Corpus corpus = dataset::BuildCorpus(corpus_config);
  std::printf("corpus: %zu functions (%.1fs)\n", corpus.functions.size(),
              timer.ElapsedSeconds());

  util::Rng rng(corpus_config.seed + 1);
  auto all_pairs = dataset::MakeMixedPairs(
      corpus, rng, static_cast<int>(flags.GetInt("pairs_per_comb")));
  std::vector<dataset::CorpusPair> train, test;
  dataset::SplitPairs(std::move(all_pairs), rng, &train, &test);
  std::printf("pairs: %zu train / %zu test\n", train.size(), test.size());

  core::AsteriaConfig config;
  config.siamese.encoder.embedding_dim =
      static_cast<int>(flags.GetInt("embedding"));
  config.siamese.encoder.hidden_dim = config.siamese.encoder.embedding_dim;
  config.seed = corpus_config.seed;
  core::AsteriaModel model(config);
  std::printf("model: %zu weights\n", model.TotalWeights());
  if (!flags.GetString("load").empty()) {
    if (!model.Load(flags.GetString("load"))) {
      std::fprintf(stderr, "failed to load %s\n",
                   flags.GetString("load").c_str());
      return 1;
    }
    std::printf("warm-started from %s\n", flags.GetString("load").c_str());
  }

  std::vector<core::FunctionFeature> features;
  for (const dataset::CorpusFunction& fn : corpus.functions) {
    core::FunctionFeature feature;
    feature.name = fn.package + "::" + fn.function;
    feature.tree = fn.preprocessed;
    feature.callee_count = fn.callee_count;
    features.push_back(std::move(feature));
  }
  std::vector<core::LabeledPair> train_pairs;
  for (const auto& pair : train) {
    train_pairs.push_back({pair.a, pair.b, pair.homologous});
  }

  for (int epoch = 0; epoch < static_cast<int>(flags.GetInt("epochs"));
       ++epoch) {
    timer.Reset();
    const double loss = model.TrainEpoch(features, train_pairs, rng);
    // Held-out AUC with calibration.
    std::vector<eval::Scored> scored;
    for (const auto& pair : test) {
      const auto& fa = features[static_cast<std::size_t>(pair.a)];
      const auto& fb = features[static_cast<std::size_t>(pair.b)];
      scored.push_back({model.FunctionSimilarity(fa, fb), pair.homologous});
    }
    std::printf("epoch %d: loss=%.5f test AUC=%.4f (%.1fs)\n", epoch, loss,
                eval::Auc(scored), timer.ElapsedSeconds());
  }

  const std::string& path = flags.GetString("save");
  if (!model.Save(path)) {
    std::fprintf(stderr, "failed to save %s\n", path.c_str());
    return 1;
  }
  std::printf("weights saved to %s\n", path.c_str());
  return 0;
}
