// Quickstart: the whole ASTERIA pipeline on two functions.
//
//   1. Write two MiniC functions (one is a cross-compiled twin, one is
//      unrelated code).
//   2. Compile them for two different ISAs and decompile to Table-I ASTs.
//   3. Preprocess (digitalize + LCRS), briefly train the Siamese Tree-LSTM
//      so homologous pairs score high, and compare.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "compiler/compile.h"
#include "core/asteria.h"
#include "decompiler/decompile.h"
#include "minic/parser.h"
#include "minic/sema.h"

namespace {

const char* kSource = R"(
int checksum(int data[], int n) {
  int sum = 0;
  int i;
  for (i = 0; i < n; i++) {
    sum = (sum << 1) ^ data[i & 7];
    if (sum < 0) { sum = -sum; }
  }
  return sum % 65521;
}
int unrelated(int a, int b) {
  if (a > b) { return a - b; }
  if (a < b) { return b - a; }
  return a * b + 17;
}
)";

}  // namespace

int main() {
  using namespace asteria;

  // 1. Parse + type-check.
  minic::Program program;
  std::string error;
  if (!minic::Parse(kSource, &program, &error) ||
      !minic::Check(program, &error)) {
    std::fprintf(stderr, "source error: %s\n", error.c_str());
    return 1;
  }

  // 2. Cross-compile: x86 and ARM builds of the same translation unit.
  auto x86 = compiler::CompileProgram(program, binary::Isa::kX86, "demo");
  auto arm = compiler::CompileProgram(program, binary::Isa::kArm, "demo");
  if (!x86.ok || !arm.ok) {
    std::fprintf(stderr, "compile error\n");
    return 1;
  }

  // 3. Decompile to Table-I ASTs (our Hex-Rays substitute).
  auto checksum_x86 = decompiler::DecompileFunction(
      x86.module, x86.module.FindFunction("checksum"));
  auto checksum_arm = decompiler::DecompileFunction(
      arm.module, arm.module.FindFunction("checksum"));
  auto unrelated_arm = decompiler::DecompileFunction(
      arm.module, arm.module.FindFunction("unrelated"));
  std::printf("decompiled AST sizes: checksum/x86=%d checksum/ARM=%d "
              "unrelated/ARM=%d\n",
              checksum_x86.tree.size(), checksum_arm.tree.size(),
              unrelated_arm.tree.size());

  // 4. Preprocess and score with the Siamese Tree-LSTM. A fresh model knows
  // nothing, so teach it this tiny task first (real use: train on a corpus,
  // e.g. examples/train_model.cpp, and Load() the weights).
  core::AsteriaConfig config;
  core::AsteriaModel model(config);
  const auto a = core::AsteriaModel::Preprocess(checksum_x86.tree);
  const auto b = core::AsteriaModel::Preprocess(checksum_arm.tree);
  const auto c = core::AsteriaModel::Preprocess(unrelated_arm.tree);
  for (int step = 0; step < 40; ++step) {
    model.TrainPair(a, b, /*homologous=*/true);
    model.TrainPair(a, c, /*homologous=*/false);
  }

  const double homologous = core::CalibratedSimilarity(
      model.AstSimilarity(a, b), checksum_x86.callee_count,
      checksum_arm.callee_count);
  const double different = core::CalibratedSimilarity(
      model.AstSimilarity(a, c), checksum_x86.callee_count,
      unrelated_arm.callee_count);
  std::printf("F(checksum_x86, checksum_ARM)  = %.4f  (homologous)\n",
              homologous);
  std::printf("F(checksum_x86, unrelated_ARM) = %.4f  (non-homologous)\n",
              different);
  std::printf("%s\n", homologous > different
                          ? "OK: the homologous pair scores higher."
                          : "unexpected ordering");
  return homologous > different ? 0 : 1;
}
