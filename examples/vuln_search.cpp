// Firmware vulnerability search (the §V pipeline in miniature).
//
// Builds a small firmware corpus with planted CVE functions, trains a model
// on cross-ISA CVE pairs, searches every firmware function against the CVE
// library, and prints the hits with ground-truth verification.
//
//   ./build/examples/vuln_search --images=12 --threshold=0.6
#include <cstdio>

#include "compiler/compile.h"
#include "decompiler/decompile.h"
#include "firmware/search.h"
#include "minic/parser.h"
#include "minic/sema.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  using namespace asteria;
  util::Flags flags;
  flags.DefineInt("images", 12, "firmware images to generate");
  flags.DefineDouble("threshold", 0.6, "similarity threshold");
  flags.DefineInt("seed", 21, "seed");
  flags.DefineString("encodings_cache", "",
                     "reuse/persist firmware encodings at this path");
  if (!flags.Parse(argc, argv)) return 1;

  firmware::FirmwareCorpusConfig corpus_config;
  corpus_config.images = static_cast<int>(flags.GetInt("images"));
  corpus_config.seed = static_cast<std::uint64_t>(flags.GetInt("seed"));
  firmware::FirmwareCorpus corpus =
      firmware::BuildFirmwareCorpus(corpus_config);
  std::printf("firmware corpus: %zu images, %zu functions (%d unpack failures)\n",
              corpus.images.size(), corpus.functions.size(),
              corpus.unpack_failures);

  // Train on cross-ISA variants of the CVE library (a pretrained corpus
  // model works too; see bench_table4_vuln_search for the full protocol).
  core::AsteriaConfig model_config;
  core::AsteriaModel model(model_config);
  std::vector<ast::BinaryAst> trees;
  for (const firmware::VulnSpec& spec : firmware::VulnLibrary()) {
    for (int isa = 0; isa < binary::kNumIsas; ++isa) {
      minic::Program program;
      std::string error;
      if (!minic::Parse(spec.vulnerable_source, &program, &error)) continue;
      auto compiled = compiler::CompileProgram(
          program, static_cast<binary::Isa>(isa), spec.software);
      if (!compiled.ok) continue;
      auto decompiled = decompiler::DecompileFunction(
          compiled.module, compiled.module.FindFunction(spec.function));
      trees.push_back(ast::ToLeftChildRightSibling(decompiled.tree));
    }
  }
  std::printf("training on %zu cross-ISA CVE variants...\n", trees.size());
  for (int round = 0; round < 25; ++round) {
    for (std::size_t i = 0; i < trees.size(); ++i) {
      model.TrainPair(trees[i], trees[(i / 4) * 4 + (i + 1) % 4], true);
      model.TrainPair(trees[i], trees[(i + 4) % trees.size()], false);
    }
  }

  firmware::VulnSearchResult result = firmware::RunVulnSearchCached(
      model, corpus, flags.GetDouble("threshold"), /*beta=*/4,
      flags.GetString("encodings_cache"));
  std::printf("\nsearch results at threshold %.2f:\n",
              flags.GetDouble("threshold"));
  for (const firmware::CveSearchResult& row : result.per_cve) {
    std::printf("  %-15s %-28s candidates=%-3d confirmed=%-3d", row.cve.c_str(),
                row.function.c_str(), row.candidates, row.confirmed);
    if (!row.affected_models.empty()) {
      std::printf(" models:");
      for (const std::string& device : row.affected_models) {
        std::printf(" %s", device.c_str());
      }
    }
    std::printf("\n");
  }
  std::printf("total: %d candidates, %d confirmed vulnerable\n",
              result.total_candidates, result.total_confirmed);
  return 0;
}
