// asteria-serve — long-lived similarity query daemon (docs/SERVING.md).
//
//   asteria-serve --socket=PATH --index=SNAPSHOT [--weights=FILE]
//                 [--workers=N] [--batch_max=N] [--queue=N] [--threads=N]
//                 [--queue_high_water=N] [--io_timeout_ms=N] [--max_conns=N]
//                 [--drain_timeout_ms=N] [--fast_encoder=0|1]
//                 [--failpoints=SPEC] [--log_level=LEVEL]
//                 [--metrics_out=FILE] [--slow_query_ms=N] [--slow_log=FILE]
//                 [--telemetry_interval_ms=N] [--request_log_out=FILE]
//
// Loads the model weights and the index once — --index may be a monolithic
// INDX snapshot or a MANI shard manifest (sharded results are bitwise
// identical) — then answers TopK / AboveThreshold queries over the
// Unix-domain socket until a kShutdown control frame (asteria-cli ctl
// shutdown), SIGTERM, or SIGINT stops it. SIGHUP (or asteria-cli ctl
// reload) re-loads --index and atomically swaps the new snapshot in
// without blocking in-flight queries; `asteria-cli ingest --socket=...`
// sends that reload after every publish, so new firmware becomes
// queryable without a restart.
//
// Flags go through util::Flags, so every numeric value is parsed strictly
// (trailing garbage, overflow, and non-finite input are errors, never
// silently clamped). --metrics_out writes the serve.* counters, latency
// histograms, and span profile as JSON when the daemon exits;
// --request_log_out dumps the wide-event request ring the same way
// (docs/OBSERVABILITY.md "Per-request tracing"). --slow_query_ms arms the
// live slow-query capture: answered queries at or past the threshold spill
// to --slow_log as the daemon runs.
#include <csignal>
#include <cstdio>
#include <string>

#include "core/asteria.h"
#include "serve/server.h"
#include "util/failpoint.h"
#include "util/flags.h"
#include "util/log.h"
#include "util/metrics.h"
#include "util/request_log.h"

namespace {

asteria::serve::Server* g_server = nullptr;

// Handlers only touch Server's atomic flags (async-signal-safe stores);
// the accept loop acts on them within one poll tick.
void OnStopSignal(int) {
  if (g_server != nullptr) g_server->RequestStop();
}

void OnReloadSignal(int) {
  if (g_server != nullptr) g_server->RequestReload();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace asteria;

  util::Flags flags;
  flags.DefineString("socket", "", "Unix-domain socket path to listen on");
  flags.DefineString("index", "",
                     "INDX snapshot or MANI shard manifest to serve");
  flags.DefineString("weights", "",
                     "model checkpoint (untrained weights when omitted)");
  flags.DefineInt("workers", 1, "dispatch worker threads");
  flags.DefineInt("batch_max", 16,
                  "max queries coalesced into one scoring pass");
  flags.DefineInt("queue", 256, "bounded request queue capacity");
  flags.DefineInt("threads", 1, "scoring threads inside a batch");
  flags.DefineInt("queue_high_water", 0,
                  "shed queries (kOverloaded) once the queue holds this many "
                  "(0 = shed only at --queue capacity)");
  flags.DefineInt("io_timeout_ms", 5000,
                  "max ms between a frame's first and last byte, and the "
                  "socket send timeout (0 = unbounded)");
  flags.DefineInt("max_conns", 64,
                  "connection cap; over-limit connects get kOverloaded then "
                  "close (0 = unlimited)");
  flags.DefineInt("drain_timeout_ms", 2000,
                  "on shutdown, queued queries get this long to finish "
                  "before the remainder is answered kShuttingDown");
  flags.DefineBool("fast_encoder", true,
                   "use the fused tape-free encode kernel");
  flags.DefineString("failpoints", "",
                     "fault-injection spec, e.g. serve.read=once");
  flags.DefineString("log_level", "info", "debug|info|warn|error");
  flags.DefineString("metrics_out", "",
                     "write the metrics snapshot JSON here on exit");
  flags.DefineInt("slow_query_ms", -1,
                  "spill answered queries at or past this latency to "
                  "--slow_log (0 = every answered query; negative = off)");
  flags.DefineString("slow_log", "",
                     "slow-query capture file (CRC-framed SLOW lines; "
                     "required when --slow_query_ms >= 0)");
  flags.DefineInt("telemetry_interval_ms", 500,
                  "telemetry sampler cadence for kStats / ctl top "
                  "(0 = sampler off)");
  flags.DefineString("request_log_out", "",
                     "dump the wide-event request ring here on exit");
  if (!flags.Parse(argc, argv)) return 2;

  const std::string socket_path = flags.GetString("socket");
  const std::string index_path = flags.GetString("index");
  if (socket_path.empty() || index_path.empty()) {
    std::fprintf(stderr, "asteria-serve: --socket and --index are required\n%s",
                 flags.Usage(argv[0]).c_str());
    return 2;
  }
  if (flags.GetInt("workers") < 1 || flags.GetInt("batch_max") < 1 ||
      flags.GetInt("queue") < 1 || flags.GetInt("threads") < 1) {
    std::fprintf(stderr,
                 "asteria-serve: --workers, --batch_max, --queue, and "
                 "--threads must be >= 1\n");
    return 2;
  }
  if (flags.GetInt("queue_high_water") < 0 ||
      flags.GetInt("io_timeout_ms") < 0 || flags.GetInt("max_conns") < 0 ||
      flags.GetInt("drain_timeout_ms") < 0 ||
      flags.GetInt("telemetry_interval_ms") < 0) {
    std::fprintf(stderr,
                 "asteria-serve: --queue_high_water, --io_timeout_ms, "
                 "--max_conns, --drain_timeout_ms, and "
                 "--telemetry_interval_ms must be >= 0\n");
    return 2;
  }
  if (flags.GetInt("slow_query_ms") >= 0 && flags.GetString("slow_log").empty()) {
    std::fprintf(stderr,
                 "asteria-serve: --slow_query_ms needs --slow_log=FILE to "
                 "spill into\n");
    return 2;
  }
  util::LogLevel level = util::LogLevel::kInfo;
  if (!util::ParseLogLevel(flags.GetString("log_level"), &level)) {
    std::fprintf(stderr, "bad --log_level '%s' (debug|info|warn|error)\n",
                 flags.GetString("log_level").c_str());
    return 2;
  }
  util::SetLogLevel(level);
  if (!flags.GetString("failpoints").empty()) {
    std::string error;
    if (!util::ConfigureFailpoints(flags.GetString("failpoints"), &error)) {
      std::fprintf(stderr, "bad --failpoints spec: %s\n", error.c_str());
      return 2;
    }
  }

  core::AsteriaConfig model_config;
  model_config.siamese.use_fast_encoder = flags.GetBool("fast_encoder");
  core::AsteriaModel model(model_config);
  if (!flags.GetString("weights").empty()) {
    if (!model.Load(flags.GetString("weights"))) {
      std::fprintf(stderr, "cannot load weights from %s\n",
                   flags.GetString("weights").c_str());
      return 1;
    }
  } else {
    std::fprintf(stderr,
                 "warning: serving with UNTRAINED weights; the snapshot must "
                 "have been built by the same untrained configuration\n");
  }

  serve::ServerConfig config;
  config.socket_path = socket_path;
  config.index_path = index_path;
  config.workers = static_cast<int>(flags.GetInt("workers"));
  config.batch_max = static_cast<int>(flags.GetInt("batch_max"));
  config.queue_capacity = static_cast<int>(flags.GetInt("queue"));
  config.score_threads = static_cast<int>(flags.GetInt("threads"));
  config.queue_high_water = static_cast<int>(flags.GetInt("queue_high_water"));
  config.io_timeout_ms = static_cast<int>(flags.GetInt("io_timeout_ms"));
  config.max_conns = static_cast<int>(flags.GetInt("max_conns"));
  config.drain_timeout_ms = static_cast<int>(flags.GetInt("drain_timeout_ms"));
  config.slow_query_ms = static_cast<int>(flags.GetInt("slow_query_ms"));
  config.slow_log_path = flags.GetString("slow_log");
  config.telemetry_interval_ms =
      static_cast<int>(flags.GetInt("telemetry_interval_ms"));

  serve::Server server(model, config);
  std::string error;
  int rc = 0;
  if (!server.Start(&error)) {
    std::fprintf(stderr, "asteria-serve: %s\n", error.c_str());
    rc = 1;
  } else {
    g_server = &server;
    std::signal(SIGTERM, OnStopSignal);
    std::signal(SIGINT, OnStopSignal);
    std::signal(SIGHUP, OnReloadSignal);
    server.Run();
    g_server = nullptr;
  }
  if (!flags.GetString("metrics_out").empty()) {
    if (!util::SnapshotMetrics().WriteJson(flags.GetString("metrics_out"),
                                           &error)) {
      std::fprintf(stderr, "cannot write --metrics_out: %s\n", error.c_str());
      if (rc == 0) rc = 1;
    }
  }
  if (!flags.GetString("request_log_out").empty()) {
    if (!util::WriteRequestLogFile(flags.GetString("request_log_out"),
                                   util::GlobalRequestLog().Snapshot(),
                                   &error)) {
      std::fprintf(stderr, "cannot write --request_log_out: %s\n",
                   error.c_str());
      if (rc == 0) rc = 1;
    }
  }
  return rc;
}
