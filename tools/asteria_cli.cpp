// asteria-cli — command-line front end to the pipeline substrates.
//
//   asteria-cli gen [seed]                     generate a random MiniC package
//   asteria-cli compile <file> [isa]           compile and disassemble
//   asteria-cli decompile <file> [isa] [fn]    decompile to Table-I s-exprs
//   asteria-cli dot <file> <fn> [isa]          decompiled AST as Graphviz dot
//   asteria-cli stats <file>                   per-ISA AST size/callee table
//   asteria-cli sim <file> <fnA> <isaA> <fnB> <isaB> [weights]
//                                              similarity of two functions
//   asteria-cli search <file> <fn> <isa> [k] [weights]
//                                              top-k clone search: query one
//                                              function against every function
//                                              of every ISA build of <file>
//   asteria-cli run <file> <fn> [args...]      execute in the interpreter
//
// ISAs: x86 x64 ARM PPC (default x86).
//
// A --threads=N flag (anywhere on the command line) sets the worker-thread
// count for offline encoding and query scoring; results are bitwise
// identical for any value (util::ThreadPool determinism contract).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "binary/disasm.h"
#include "compiler/compile.h"
#include "core/asteria.h"
#include "core/search_index.h"
#include "decompiler/decompile.h"
#include "minic/interp.h"
#include "minic/parser.h"
#include "minic/printer.h"
#include "minic/sema.h"
#include "dataset/generator.h"
#include "util/table.h"

namespace {

using namespace asteria;

int g_threads = 1;  // set by --threads=N

int Usage() {
  std::fprintf(
      stderr,
      "usage: asteria-cli <gen|compile|decompile|dot|stats|sim|search|run> "
      "[--threads=N] ...\n"
      "see the header of tools/asteria_cli.cpp for details\n");
  return 2;
}

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

bool LoadProgram(const std::string& path, minic::Program* program) {
  std::string source, error;
  if (!ReadFile(path, &source)) {
    std::fprintf(stderr, "cannot read %s\n", path.c_str());
    return false;
  }
  if (!minic::Parse(source, program, &error) ||
      !minic::Check(*program, &error)) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(), error.c_str());
    return false;
  }
  return true;
}

binary::Isa ParseIsa(const std::string& name) {
  const binary::Isa isa = binary::IsaFromName(name);
  if (isa == binary::Isa::kIsaCount) {
    std::fprintf(stderr, "unknown ISA '%s' (x86|x64|ARM|PPC)\n", name.c_str());
    std::exit(2);
  }
  return isa;
}

int CmdGen(int argc, char** argv) {
  const std::uint64_t seed = argc > 2 ? std::stoull(argv[2]) : 42;
  dataset::GeneratorConfig config;
  util::Rng rng(seed);
  minic::Program program = dataset::GenerateProgram(config, rng);
  std::fputs(minic::Print(program).c_str(), stdout);
  return 0;
}

int CmdCompile(int argc, char** argv) {
  if (argc < 3) return Usage();
  minic::Program program;
  if (!LoadProgram(argv[2], &program)) return 1;
  const binary::Isa isa = argc > 3 ? ParseIsa(argv[3]) : binary::Isa::kX86;
  auto result = compiler::CompileProgram(program, isa, argv[2]);
  if (!result.ok) {
    std::fprintf(stderr, "compile error: %s\n", result.error.c_str());
    return 1;
  }
  std::fputs(binary::DisasmModule(result.module).c_str(), stdout);
  std::fprintf(stderr, "; %zu instructions, %d calls inlined\n",
               result.module.TotalInstructions(), result.inlined_calls);
  return 0;
}

int CmdDecompile(int argc, char** argv) {
  if (argc < 3) return Usage();
  minic::Program program;
  if (!LoadProgram(argv[2], &program)) return 1;
  const binary::Isa isa = argc > 3 ? ParseIsa(argv[3]) : binary::Isa::kX86;
  const std::string only = argc > 4 ? argv[4] : "";
  auto result = compiler::CompileProgram(program, isa, argv[2]);
  if (!result.ok) {
    std::fprintf(stderr, "compile error: %s\n", result.error.c_str());
    return 1;
  }
  for (std::size_t f = 0; f < result.module.functions.size(); ++f) {
    if (!only.empty() && result.module.functions[f].name != only) continue;
    auto decompiled =
        decompiler::DecompileFunction(result.module, static_cast<int>(f));
    std::printf("; %s  (AST size %d, depth %d, |chi|=%d)\n",
                decompiled.name.c_str(), decompiled.tree.size(),
                decompiled.tree.Depth(), decompiled.callee_count);
    std::printf("%s\n\n", decompiled.tree.ToSExpr().c_str());
  }
  return 0;
}

int CmdDot(int argc, char** argv) {
  if (argc < 4) return Usage();
  minic::Program program;
  if (!LoadProgram(argv[2], &program)) return 1;
  const binary::Isa isa = argc > 4 ? ParseIsa(argv[4]) : binary::Isa::kX86;
  auto result = compiler::CompileProgram(program, isa, argv[2]);
  if (!result.ok) return 1;
  const int fn = result.module.FindFunction(argv[3]);
  if (fn < 0) {
    std::fprintf(stderr, "no function '%s'\n", argv[3]);
    return 1;
  }
  auto decompiled = decompiler::DecompileFunction(result.module, fn);
  std::fputs(decompiled.tree.ToDot(argv[3]).c_str(), stdout);
  return 0;
}

int CmdStats(int argc, char** argv) {
  if (argc < 3) return Usage();
  minic::Program program;
  if (!LoadProgram(argv[2], &program)) return 1;
  util::TextTable table({"function", "ISA", "instructions", "AST size",
                         "AST depth", "|chi|"});
  for (int isa = 0; isa < binary::kNumIsas; ++isa) {
    auto result =
        compiler::CompileProgram(program, static_cast<binary::Isa>(isa), argv[2]);
    if (!result.ok) continue;
    auto decompiled = decompiler::DecompileModule(result.module);
    for (std::size_t f = 0; f < decompiled.size(); ++f) {
      table.AddRow(
          {decompiled[f].name,
           std::string(binary::IsaName(static_cast<binary::Isa>(isa))),
           std::to_string(decompiled[f].instruction_count),
           std::to_string(decompiled[f].tree.size()),
           std::to_string(decompiled[f].tree.Depth()),
           std::to_string(decompiled[f].callee_count)});
    }
  }
  std::fputs(table.ToString().c_str(), stdout);
  return 0;
}

int CmdSim(int argc, char** argv) {
  if (argc < 7) return Usage();
  minic::Program program;
  if (!LoadProgram(argv[2], &program)) return 1;
  const std::string fn_a = argv[3];
  const binary::Isa isa_a = ParseIsa(argv[4]);
  const std::string fn_b = argv[5];
  const binary::Isa isa_b = ParseIsa(argv[6]);

  core::AsteriaConfig config;
  core::AsteriaModel model(config);
  if (argc > 7) {
    if (!model.Load(argv[7])) {
      std::fprintf(stderr, "cannot load weights from %s\n", argv[7]);
      return 1;
    }
  } else {
    std::fprintf(stderr,
                 "warning: scoring with UNTRAINED weights; pass a weight "
                 "file (see examples/train_model)\n");
  }

  auto feature = [&](const std::string& fn_name, binary::Isa isa,
                     core::FunctionFeature* out) {
    auto result = compiler::CompileProgram(program, isa, "cli");
    if (!result.ok) return false;
    const int fn = result.module.FindFunction(fn_name);
    if (fn < 0) {
      std::fprintf(stderr, "no function '%s'\n", fn_name.c_str());
      return false;
    }
    auto decompiled = decompiler::DecompileFunction(result.module, fn);
    out->name = fn_name;
    out->tree = core::AsteriaModel::Preprocess(decompiled.tree);
    out->callee_count = decompiled.callee_count;
    return true;
  };
  core::FunctionFeature a, b;
  if (!feature(fn_a, isa_a, &a) || !feature(fn_b, isa_b, &b)) return 1;
  const double m = model.AstSimilarity(a.tree, b.tree);
  const double f = core::CalibratedSimilarity(m, a.callee_count, b.callee_count);
  std::printf("M(T1,T2) = %.6f   S(C1=%d, C2=%d) = %.6f   F = %.6f\n", m,
              a.callee_count, b.callee_count,
              core::CalleeSimilarity(a.callee_count, b.callee_count), f);
  return 0;
}

int CmdSearch(int argc, char** argv) {
  if (argc < 5) return Usage();
  minic::Program program;
  if (!LoadProgram(argv[2], &program)) return 1;
  const std::string query_fn = argv[3];
  const binary::Isa query_isa = ParseIsa(argv[4]);
  const int k = argc > 5 ? std::atoi(argv[5]) : 10;

  core::AsteriaConfig config;
  core::AsteriaModel model(config);
  if (argc > 6) {
    if (!model.Load(argv[6])) {
      std::fprintf(stderr, "cannot load weights from %s\n", argv[6]);
      return 1;
    }
  } else {
    std::fprintf(stderr,
                 "warning: scoring with UNTRAINED weights; pass a weight "
                 "file (see examples/train_model)\n");
  }

  // Offline phase: every function of every ISA build goes into the index.
  std::vector<core::FunctionFeature> features;
  core::FunctionFeature query;
  bool have_query = false;
  for (int isa = 0; isa < binary::kNumIsas; ++isa) {
    auto result = compiler::CompileProgram(
        program, static_cast<binary::Isa>(isa), argv[2]);
    const std::string isa_name(binary::IsaName(static_cast<binary::Isa>(isa)));
    if (!result.ok) {
      std::fprintf(stderr, "compile error (%s): %s\n", isa_name.c_str(),
                   result.error.c_str());
      return 1;
    }
    auto decompiled = decompiler::DecompileModule(result.module);
    for (decompiler::DecompiledFunction& df : decompiled) {
      core::FunctionFeature feature;
      feature.name = df.name + "@" + isa_name;
      feature.tree = core::AsteriaModel::Preprocess(df.tree);
      feature.callee_count = df.callee_count;
      if (static_cast<binary::Isa>(isa) == query_isa && df.name == query_fn) {
        query = feature;
        have_query = true;
      }
      features.push_back(std::move(feature));
    }
  }
  if (!have_query) {
    std::fprintf(stderr, "no function '%s' under %s\n", query_fn.c_str(),
                 std::string(binary::IsaName(query_isa)).c_str());
    return 1;
  }
  core::SearchIndex index(model, g_threads);
  index.AddAll(features);
  util::TextTable table({"rank", "function", "F"});
  const auto hits = index.TopK(query, k);
  for (std::size_t i = 0; i < hits.size(); ++i) {
    char score[32];
    std::snprintf(score, sizeof(score), "%.6f", hits[i].score);
    table.AddRow({std::to_string(i + 1), hits[i].name, score});
  }
  std::fputs(table.ToString().c_str(), stdout);
  return 0;
}

int CmdRun(int argc, char** argv) {
  if (argc < 4) return Usage();
  minic::Program program;
  if (!LoadProgram(argv[2], &program)) return 1;
  std::vector<minic::ArgValue> args;
  for (int i = 4; i < argc; ++i) {
    args.push_back(minic::ArgValue::Scalar(std::stoll(argv[i])));
  }
  minic::Interpreter interp(program);
  const auto result = interp.Call(argv[3], std::move(args));
  if (!result.ok) {
    std::fprintf(stderr, "trap: %s\n", result.trap.c_str());
    return 1;
  }
  std::printf("%lld\n", static_cast<long long>(result.value));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Extract --threads=N wherever it appears; commands see positional args only.
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      g_threads = std::atoi(argv[i] + 10);
      if (g_threads < 1) g_threads = 1;
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      --argc;
      --i;
    }
  }
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  if (command == "gen") return CmdGen(argc, argv);
  if (command == "compile") return CmdCompile(argc, argv);
  if (command == "decompile") return CmdDecompile(argc, argv);
  if (command == "dot") return CmdDot(argc, argv);
  if (command == "stats") return CmdStats(argc, argv);
  if (command == "sim") return CmdSim(argc, argv);
  if (command == "search") return CmdSearch(argc, argv);
  if (command == "run") return CmdRun(argc, argv);
  return Usage();
}
