// asteria-cli — command-line front end to the pipeline substrates.
//
//   asteria-cli gen [seed]                     generate a random MiniC package
//   asteria-cli compile <file> [isa]           compile and disassemble
//   asteria-cli decompile <file> [isa] [fn]    decompile to Table-I s-exprs
//   asteria-cli dot <file> <fn> [isa]          decompiled AST as Graphviz dot
//   asteria-cli stats <file>                   per-ISA AST size/callee table
//                                              plus the metrics snapshot of
//                                              the run (counters/spans)
//   asteria-cli sim <file> <fnA> <isaA> <fnB> <isaB> [weights]
//                                              similarity of two functions
//   asteria-cli search <file> <fn> <isa> [k] [weights]
//                                              top-k clone search: query one
//                                              function against every function
//                                              of every ISA build of <file>
//   asteria-cli index-build <file> <out.idx> [weights]
//                                              offline phase: encode every
//                                              function of every ISA build and
//                                              save a CRC-checked snapshot
//   asteria-cli index-info <idx>               inspect a snapshot (or any
//                                              container artifact) without
//                                              loading a model
//   asteria-cli index-query <idx> <file> <fn> <isa> [k] [weights]
//                                              online phase: load the snapshot
//                                              (no re-encoding) and run top-k;
//                                              --batch_file=FILE queries every
//                                              listed function in one batched
//                                              sweep, --repeat=N re-runs it and
//                                              reports warm latency (the
//                                              scripts/bench_search.sh path)
//   asteria-cli run <file> <fn> [args...]      execute in the interpreter
//   asteria-cli failpoints                     list registered failpoints
//   asteria-cli query <file> <fn> <isa> [k] --socket=PATH
//                                              send a top-k query to a running
//                                              asteria-serve daemon; with
//                                              --repeat=N, re-send it N times
//                                              and report per-query latency
//                                              (the warm path of
//                                              scripts/bench_serve.sh)
//   asteria-cli ctl <ping|health|top|reload|shutdown> --socket=PATH
//                                              control a running daemon;
//                                              `health` prints index size,
//                                              queue depth, connection count,
//                                              uptime, answered/shed/deadline
//                                              totals, and whether it is
//                                              draining; `top` prints the
//                                              live-telemetry view (QPS,
//                                              shed/deadline rates from the
//                                              sampler ring, p50/p95/p99
//                                              latency) — with --repeat=N it
//                                              refreshes N times
//   asteria-cli fw-gen <out_dir> <count> [seed]
//                                              pack synthetic firmware images
//                                              as <out_dir>/img-<seed>-<i>.fw
//                                              drop files for `ingest`
//   asteria-cli ingest <index_dir> [image.fw ...] [--drop_dir=DIR]
//               [--compact] [--weights=FILE] [--socket=PATH]
//                                              streaming ingest: decompile +
//                                              encode each NEW image (content
//                                              digest dedup, FENC cache
//                                              reuse), publish it as a shard
//                                              under <index_dir>/manifest.mani
//                                              and poke a running daemon's
//                                              reload path (--socket). With
//                                              --drop_dir, sweep DIR for
//                                              *.fw files; with --compact,
//                                              fold adjacent small shards
//                                              afterwards.
//   asteria-cli delta-search <index_dir> [threshold] [--weights=FILE]
//                                              re-run the CVE library queries
//                                              against only the shards newer
//                                              than the manifest's searched
//                                              high-water mark, append every
//                                              hit to the persistent
//                                              <index_dir>/alerts.jsonl CVE
//                                              log, then advance the mark
//   asteria-cli alerts <index_dir>             print the accumulated CVE-alert
//                                              log (crash-torn or corrupted
//                                              lines are skipped and counted)
//
// Client request-lifecycle flags for `query` and `ctl` (docs/SERVING.md):
// --deadline_ms=N stamps each request's frame header with a time budget the
// daemon enforces at dequeue; --retries=N retries idempotent operations
// (never reload/shutdown) with jittered exponential backoff over reconnect,
// shed (kOverloaded), and drain (kShuttingDown); --retry_seed=N pins the
// jitter rng for reproducible timing.
//
// ISAs: x86 x64 ARM PPC (default x86).
//
// A --threads=N flag (anywhere on the command line) sets the worker-thread
// count for offline encoding and query scoring; results are bitwise
// identical for any value (util::ThreadPool determinism contract) — and a
// snapshot round trip preserves that: index-query over a loaded snapshot
// returns bitwise-identical TopK results to a fresh index-build.
//
// A --fast_encoder={0,1} flag selects the encode kernel: the fused
// tape-free TreeLstmFastEncoder (default) or the autograd reference path.
// Both produce bitwise-identical encodings (docs/PERFORMANCE.md).
//
// A --failpoints=SPEC flag (or the ASTERIA_FAILPOINTS env var) arms
// fault-injection points, e.g. --failpoints=store.write=once (see
// docs/ROBUSTNESS.md); --failpoints=list prints the registered names.
//
// A --log_level={debug,info,warn,error} flag sets the logger's minimum
// emitted level (default info). Each line carries a thread ordinal.
//
// A --metrics_out=FILE flag writes the process metrics snapshot (counters,
// histograms, per-stage span times, pipeline reports) as JSON after the
// command finishes, whatever its exit code — see docs/OBSERVABILITY.md.
//
// A --trace_out=FILE flag dumps this process's wide-event request log (one
// CRC-framed record per client attempt / ingest op) the same way — the
// client half of the per-request trace join (docs/OBSERVABILITY.md
// "Per-request tracing").
#include <sys/stat.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "binary/disasm.h"
#include "compiler/compile.h"
#include "core/asteria.h"
#include "core/search_index.h"
#include "decompiler/decompile.h"
#include "firmware/image.h"
#include "firmware/search.h"
#include "ingest/ingest.h"
#include "store/manifest.h"
#include "minic/interp.h"
#include "minic/parser.h"
#include "minic/printer.h"
#include "minic/sema.h"
#include "dataset/generator.h"
#include "serve/client.h"
#include "store/container.h"
#include "util/failpoint.h"
#include "util/timer.h"
#include "util/log.h"
#include "util/metrics.h"
#include "util/request_log.h"
#include "util/table.h"

namespace {

using namespace asteria;

int g_threads = 1;           // set by --threads=N
bool g_fast_encoder = true;  // set by --fast_encoder={0,1}
std::string g_metrics_out;   // set by --metrics_out=FILE
std::string g_trace_out;     // set by --trace_out=FILE
std::string g_socket;        // set by --socket=PATH (query/ctl/ingest)
long g_repeat = 1;           // set by --repeat=N (query latency loops)
std::string g_batch_file;    // set by --batch_file=FILE (index-query)
std::string g_weights;       // set by --weights=FILE (ingest/delta-search)
std::string g_drop_dir;      // set by --drop_dir=DIR (ingest)
bool g_compact = false;      // set by --compact (ingest)
long g_deadline_ms = 0;      // set by --deadline_ms=N (query/ctl)
long g_retries = 0;          // set by --retries=N (query/ctl)
long g_retry_seed = 0;       // set by --retry_seed=N (query/ctl)

// Client options for `query`/`ctl`, folding in the request-lifecycle flags.
serve::ClientOptions CliClientOptions() {
  serve::ClientOptions options;
  options.deadline_ms = static_cast<std::uint64_t>(g_deadline_ms);
  options.max_retries = static_cast<int>(g_retries);
  options.retry_seed = static_cast<std::uint64_t>(g_retry_seed);
  return options;
}

// Model config for every command: the fused tape-free encode kernel unless
// --fast_encoder=0 asks for the autograd reference path (the two produce
// bitwise-identical encodings; see docs/PERFORMANCE.md).
core::AsteriaConfig CliModelConfig() {
  core::AsteriaConfig config;
  config.siamese.use_fast_encoder = g_fast_encoder;
  return config;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: asteria-cli <gen|compile|decompile|dot|stats|sim|search|"
      "index-build|index-info|index-query|query|ctl|run|failpoints|"
      "fw-gen|ingest|delta-search|alerts> "
      "[--threads=N] [--fast_encoder=0|1] [--failpoints=SPEC] "
      "[--log_level=LEVEL] [--metrics_out=FILE] [--trace_out=FILE] "
      "[--socket=PATH] "
      "[--repeat=N] [--batch_file=FILE] [--weights=FILE] [--drop_dir=DIR] "
      "[--compact] "
      "[--deadline_ms=N] [--retries=N] [--retry_seed=N] ...\n"
      "see the header of tools/asteria_cli.cpp for details\n");
  return 2;
}

// Strict base-10 integer parse: the whole token must be digits (optionally
// signed); anything else is an error, not silently clamped garbage.
bool ParseInt(const char* text, long* out) {
  if (text == nullptr || *text == '\0') return false;
  char* end = nullptr;
  errno = 0;
  const long value = std::strtol(text, &end, 10);
  if (errno != 0 || end == text || *end != '\0') return false;
  *out = value;
  return true;
}

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

bool LoadProgram(const std::string& path, minic::Program* program) {
  std::string source, error;
  if (!ReadFile(path, &source)) {
    std::fprintf(stderr, "cannot read %s\n", path.c_str());
    return false;
  }
  if (!minic::Parse(source, program, &error) ||
      !minic::Check(*program, &error)) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(), error.c_str());
    return false;
  }
  return true;
}

binary::Isa ParseIsa(const std::string& name) {
  const binary::Isa isa = binary::IsaFromName(name);
  if (isa == binary::Isa::kIsaCount) {
    std::fprintf(stderr, "unknown ISA '%s' (x86|x64|ARM|PPC)\n", name.c_str());
    std::exit(2);
  }
  return isa;
}

int CmdFailpoints() {
  for (const std::string& name : util::ListFailpoints()) {
    std::printf("%s\n", name.c_str());
  }
  return 0;
}

int CmdGen(int argc, char** argv) {
  std::uint64_t seed = 42;
  if (argc > 2) {
    long value = 0;
    if (!ParseInt(argv[2], &value) || value < 0) {
      std::fprintf(stderr, "bad seed '%s' (expected a non-negative integer)\n",
                   argv[2]);
      return 2;
    }
    seed = static_cast<std::uint64_t>(value);
  }
  dataset::GeneratorConfig config;
  util::Rng rng(seed);
  minic::Program program = dataset::GenerateProgram(config, rng);
  std::fputs(minic::Print(program).c_str(), stdout);
  return 0;
}

int CmdCompile(int argc, char** argv) {
  if (argc < 3) return Usage();
  minic::Program program;
  if (!LoadProgram(argv[2], &program)) return 1;
  const binary::Isa isa = argc > 3 ? ParseIsa(argv[3]) : binary::Isa::kX86;
  auto result = compiler::CompileProgram(program, isa, argv[2]);
  if (!result.ok) {
    std::fprintf(stderr, "compile error: %s\n", result.error.c_str());
    return 1;
  }
  std::fputs(binary::DisasmModule(result.module).c_str(), stdout);
  std::fprintf(stderr, "; %zu instructions, %d calls inlined\n",
               result.module.TotalInstructions(), result.inlined_calls);
  return 0;
}

int CmdDecompile(int argc, char** argv) {
  if (argc < 3) return Usage();
  minic::Program program;
  if (!LoadProgram(argv[2], &program)) return 1;
  const binary::Isa isa = argc > 3 ? ParseIsa(argv[3]) : binary::Isa::kX86;
  const std::string only = argc > 4 ? argv[4] : "";
  auto result = compiler::CompileProgram(program, isa, argv[2]);
  if (!result.ok) {
    std::fprintf(stderr, "compile error: %s\n", result.error.c_str());
    return 1;
  }
  for (std::size_t f = 0; f < result.module.functions.size(); ++f) {
    if (!only.empty() && result.module.functions[f].name != only) continue;
    auto decompiled =
        decompiler::DecompileFunction(result.module, static_cast<int>(f));
    std::printf("; %s  (AST size %d, depth %d, |chi|=%d)\n",
                decompiled.name.c_str(), decompiled.tree.size(),
                decompiled.tree.Depth(), decompiled.callee_count);
    std::printf("%s\n\n", decompiled.tree.ToSExpr().c_str());
  }
  return 0;
}

int CmdDot(int argc, char** argv) {
  if (argc < 4) return Usage();
  minic::Program program;
  if (!LoadProgram(argv[2], &program)) return 1;
  const binary::Isa isa = argc > 4 ? ParseIsa(argv[4]) : binary::Isa::kX86;
  auto result = compiler::CompileProgram(program, isa, argv[2]);
  if (!result.ok) return 1;
  const int fn = result.module.FindFunction(argv[3]);
  if (fn < 0) {
    std::fprintf(stderr, "no function '%s'\n", argv[3]);
    return 1;
  }
  auto decompiled = decompiler::DecompileFunction(result.module, fn);
  std::fputs(decompiled.tree.ToDot(argv[3]).c_str(), stdout);
  return 0;
}

int CmdStats(int argc, char** argv) {
  if (argc < 3) return Usage();
  minic::Program program;
  if (!LoadProgram(argv[2], &program)) return 1;
  util::TextTable table({"function", "ISA", "instructions", "AST size",
                         "AST depth", "|chi|"});
  for (int isa = 0; isa < binary::kNumIsas; ++isa) {
    auto result =
        compiler::CompileProgram(program, static_cast<binary::Isa>(isa), argv[2]);
    if (!result.ok) continue;
    auto decompiled = decompiler::DecompileModule(result.module);
    for (std::size_t f = 0; f < decompiled.size(); ++f) {
      table.AddRow(
          {decompiled[f].name,
           std::string(binary::IsaName(static_cast<binary::Isa>(isa))),
           std::to_string(decompiled[f].instruction_count),
           std::to_string(decompiled[f].tree.size()),
           std::to_string(decompiled[f].tree.Depth()),
           std::to_string(decompiled[f].callee_count)});
    }
  }
  std::fputs(table.ToString().c_str(), stdout);
  // The decompiles above populated the metrics registry; print the run's
  // snapshot (counters, spans, pipeline reports) below the AST table.
  std::printf("\n%s", util::SnapshotMetrics().ToText().c_str());
  return 0;
}

int CmdSim(int argc, char** argv) {
  if (argc < 7) return Usage();
  minic::Program program;
  if (!LoadProgram(argv[2], &program)) return 1;
  const std::string fn_a = argv[3];
  const binary::Isa isa_a = ParseIsa(argv[4]);
  const std::string fn_b = argv[5];
  const binary::Isa isa_b = ParseIsa(argv[6]);

  const core::AsteriaConfig config = CliModelConfig();
  core::AsteriaModel model(config);
  if (argc > 7) {
    if (!model.Load(argv[7])) {
      std::fprintf(stderr, "cannot load weights from %s\n", argv[7]);
      return 1;
    }
  } else {
    std::fprintf(stderr,
                 "warning: scoring with UNTRAINED weights; pass a weight "
                 "file (see examples/train_model)\n");
  }

  auto feature = [&](const std::string& fn_name, binary::Isa isa,
                     core::FunctionFeature* out) {
    auto result = compiler::CompileProgram(program, isa, "cli");
    if (!result.ok) return false;
    const int fn = result.module.FindFunction(fn_name);
    if (fn < 0) {
      std::fprintf(stderr, "no function '%s'\n", fn_name.c_str());
      return false;
    }
    auto decompiled = decompiler::DecompileFunction(result.module, fn);
    out->name = fn_name;
    out->tree = core::AsteriaModel::Preprocess(decompiled.tree);
    out->callee_count = decompiled.callee_count;
    return true;
  };
  core::FunctionFeature a, b;
  if (!feature(fn_a, isa_a, &a) || !feature(fn_b, isa_b, &b)) return 1;
  const double m = model.AstSimilarity(a.tree, b.tree);
  const double f = core::CalibratedSimilarity(m, a.callee_count, b.callee_count);
  std::printf("M(T1,T2) = %.6f   S(C1=%d, C2=%d) = %.6f   F = %.6f\n", m,
              a.callee_count, b.callee_count,
              core::CalleeSimilarity(a.callee_count, b.callee_count), f);
  return 0;
}

// Loads weights into `model` when a path is given; warns otherwise.
bool LoadWeightsOrWarn(core::AsteriaModel* model, const char* path) {
  if (path != nullptr) {
    if (!model->Load(path)) {
      std::fprintf(stderr, "cannot load weights from %s\n", path);
      return false;
    }
    return true;
  }
  std::fprintf(stderr,
               "warning: scoring with UNTRAINED weights; pass a weight "
               "file (see examples/train_model)\n");
  return true;
}

// Offline phase of `search`/`index-build`: every function of every ISA
// build of `program` becomes one feature, named "<fn>@<ISA>". When
// `query_fn` is non-empty, also extracts the matching query feature.
bool CollectFeatures(const minic::Program& program, const char* source_path,
                     const std::string& query_fn, binary::Isa query_isa,
                     std::vector<core::FunctionFeature>* features,
                     core::FunctionFeature* query, bool* have_query) {
  if (have_query != nullptr) *have_query = false;
  for (int isa = 0; isa < binary::kNumIsas; ++isa) {
    auto result = compiler::CompileProgram(
        program, static_cast<binary::Isa>(isa), source_path);
    const std::string isa_name(binary::IsaName(static_cast<binary::Isa>(isa)));
    if (!result.ok) {
      std::fprintf(stderr, "compile error (%s): %s\n", isa_name.c_str(),
                   result.error.c_str());
      return false;
    }
    auto decompiled = decompiler::DecompileModule(result.module);
    for (decompiler::DecompiledFunction& df : decompiled) {
      core::FunctionFeature feature;
      feature.name = df.name + "@" + isa_name;
      feature.tree = core::AsteriaModel::Preprocess(df.tree);
      feature.callee_count = df.callee_count;
      if (!query_fn.empty() && static_cast<binary::Isa>(isa) == query_isa &&
          df.name == query_fn) {
        *query = feature;
        *have_query = true;
      }
      features->push_back(std::move(feature));
    }
  }
  if (!query_fn.empty() && have_query != nullptr && !*have_query) {
    std::fprintf(stderr, "no function '%s' under %s\n", query_fn.c_str(),
                 std::string(binary::IsaName(query_isa)).c_str());
    return false;
  }
  return true;
}

void PrintHits(const std::vector<core::SearchHit>& hits) {
  util::TextTable table({"rank", "function", "F"});
  for (std::size_t i = 0; i < hits.size(); ++i) {
    char score[32];
    std::snprintf(score, sizeof(score), "%.6f", hits[i].score);
    table.AddRow({std::to_string(i + 1), hits[i].name, score});
  }
  std::fputs(table.ToString().c_str(), stdout);
}

bool ParseTopK(int argc, char** argv, int arg_index, int* k) {
  if (argc <= arg_index) return true;  // keep the default
  long value = 0;
  if (!ParseInt(argv[arg_index], &value) || value < 1) {
    std::fprintf(stderr, "bad k '%s' (expected a positive integer)\n",
                 argv[arg_index]);
    return false;
  }
  *k = static_cast<int>(value);
  return true;
}

int CmdSearch(int argc, char** argv) {
  if (argc < 5) return Usage();
  minic::Program program;
  if (!LoadProgram(argv[2], &program)) return 1;
  const std::string query_fn = argv[3];
  const binary::Isa query_isa = ParseIsa(argv[4]);
  int k = 10;
  if (!ParseTopK(argc, argv, 5, &k)) return 1;

  const core::AsteriaConfig config = CliModelConfig();
  core::AsteriaModel model(config);
  if (!LoadWeightsOrWarn(&model, argc > 6 ? argv[6] : nullptr)) return 1;

  std::vector<core::FunctionFeature> features;
  core::FunctionFeature query;
  bool have_query = false;
  if (!CollectFeatures(program, argv[2], query_fn, query_isa, &features,
                       &query, &have_query)) {
    return 1;
  }
  core::SearchIndex index(model, g_threads);
  const util::PipelineReport report = index.AddAll(features);
  if (!report.Clean()) {
    std::fprintf(stderr, "%s\n", report.Summary().c_str());
  }
  PrintHits(index.TopK(query, k));
  return 0;
}

int CmdIndexBuild(int argc, char** argv) {
  if (argc < 4) return Usage();
  minic::Program program;
  if (!LoadProgram(argv[2], &program)) return 1;
  const std::string out_path = argv[3];

  const core::AsteriaConfig config = CliModelConfig();
  core::AsteriaModel model(config);
  if (!LoadWeightsOrWarn(&model, argc > 4 ? argv[4] : nullptr)) return 1;

  std::vector<core::FunctionFeature> features;
  if (!CollectFeatures(program, argv[2], "", binary::Isa::kX86, &features,
                       nullptr, nullptr)) {
    return 1;
  }
  core::SearchIndex index(model, g_threads);
  const util::PipelineReport report = index.AddAll(features);
  if (!report.Clean()) {
    std::fprintf(stderr, "%s\n", report.Summary().c_str());
  }
  std::string error;
  if (!index.Save(out_path, &error)) {
    std::fprintf(stderr, "cannot save index: %s\n", error.c_str());
    return 1;
  }
  std::printf("indexed %d functions -> %s\n", index.size(), out_path.c_str());
  return 0;
}

int CmdIndexInfo(int argc, char** argv) {
  if (argc < 3) return Usage();
  std::string error;
  store::Reader reader;
  if (!reader.Open(argv[2], 0, &error)) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }
  std::printf("%s: %s container, format v%u, %zu chunks\n", argv[2],
              store::FourCcName(reader.kind()).c_str(), reader.version(),
              reader.chunks().size());
  util::TextTable table({"chunk", "tag", "payload bytes", "crc32"});
  std::size_t verified = 0;
  std::vector<std::uint8_t> payload;
  for (std::size_t i = 0; i < reader.chunks().size(); ++i) {
    const store::ChunkInfo& info = reader.chunks()[i];
    char crc[16];
    std::snprintf(crc, sizeof(crc), "%08x", info.crc32);
    table.AddRow({std::to_string(i), store::FourCcName(info.tag),
                  std::to_string(info.size), crc});
    if (!reader.ReadChunk(i, &payload, &error)) {
      std::fputs(table.ToString().c_str(), stdout);
      std::fprintf(stderr, "%s\n", error.c_str());
      return 1;
    }
    ++verified;
  }
  std::fputs(table.ToString().c_str(), stdout);
  std::printf("all %zu chunk CRCs verified\n", verified);

  // A MANI manifest gets a decoded per-shard view on top of the raw chunk
  // table, so operators can see the compaction state of a sharded index.
  if (reader.kind() == store::kKindManifest) {
    store::ShardManifest manifest;
    if (!store::LoadManifest(&manifest, argv[2], &error)) {
      std::fprintf(stderr, "%s\n", error.c_str());
      return 1;
    }
    std::printf(
        "\nsharded index: sequence %llu, searched_seq %llu, model "
        "fingerprint %08x\n",
        static_cast<unsigned long long>(manifest.sequence),
        static_cast<unsigned long long>(manifest.searched_seq),
        manifest.model_fingerprint);
    util::TextTable shards(
        {"shard", "file", "entries", "bytes", "created_seq", "sources"});
    for (std::size_t i = 0; i < manifest.shards.size(); ++i) {
      const store::ShardRecord& shard = manifest.shards[i];
      shards.AddRow({std::to_string(i), shard.file,
                     std::to_string(shard.entries),
                     std::to_string(shard.bytes),
                     std::to_string(shard.created_seq),
                     std::to_string(shard.sources.size())});
    }
    std::fputs(shards.ToString().c_str(), stdout);
    std::printf("%zu shard(s), %llu entries total\n", manifest.shards.size(),
                static_cast<unsigned long long>(manifest.TotalEntries()));
  }
  return 0;
}

int CmdIndexQuery(int argc, char** argv) {
  if (argc < 6) return Usage();
  const std::string index_path = argv[2];
  minic::Program program;
  if (!LoadProgram(argv[3], &program)) return 1;
  const std::string query_fn = argv[4];
  const binary::Isa query_isa = ParseIsa(argv[5]);
  int k = 10;
  if (!ParseTopK(argc, argv, 6, &k)) return 1;

  const core::AsteriaConfig config = CliModelConfig();
  core::AsteriaModel model(config);
  if (!LoadWeightsOrWarn(&model, argc > 7 ? argv[7] : nullptr)) return 1;

  core::SearchIndex index(model, g_threads);
  std::string error;
  // Open dispatches on the container kind, so <idx> may be a monolithic
  // INDX snapshot or a MANI shard manifest — same results either way.
  if (!index.Open(index_path, &error)) {
    std::fprintf(stderr, "cannot load index: %s\n", error.c_str());
    return 1;
  }
  std::fprintf(stderr, "loaded %d encoded functions from %s (no re-encode)\n",
               index.size(), index_path.c_str());

  // Only the query functions need compiling/encoding now. With
  // --batch_file=FILE the queried names come from the file (one per line,
  // '#' comments allowed) and the positional <fn> is just the default when
  // the file is empty of names; all queries go through one TopKBatch sweep.
  std::vector<std::string> names;
  if (!g_batch_file.empty()) {
    std::string listing;
    if (!ReadFile(g_batch_file, &listing)) {
      std::fprintf(stderr, "cannot read --batch_file %s\n",
                   g_batch_file.c_str());
      return 1;
    }
    std::istringstream lines(listing);
    std::string line;
    while (std::getline(lines, line)) {
      const std::size_t start = line.find_first_not_of(" \t\r");
      if (start == std::string::npos || line[start] == '#') continue;
      const std::size_t stop = line.find_last_not_of(" \t\r");
      names.push_back(line.substr(start, stop - start + 1));
    }
  }
  if (names.empty()) names.push_back(query_fn);

  auto result = compiler::CompileProgram(program, query_isa, argv[3]);
  if (!result.ok) {
    std::fprintf(stderr, "compile error: %s\n", result.error.c_str());
    return 1;
  }
  std::vector<core::FunctionFeature> queries(names.size());
  for (std::size_t i = 0; i < names.size(); ++i) {
    const int fn = result.module.FindFunction(names[i]);
    if (fn < 0) {
      std::fprintf(stderr, "no function '%s'\n", names[i].c_str());
      return 1;
    }
    auto decompiled = decompiler::DecompileFunction(result.module, fn);
    queries[i].name = names[i];
    queries[i].tree = core::AsteriaModel::Preprocess(decompiled.tree);
    queries[i].callee_count = decompiled.callee_count;
  }
  std::vector<const core::FunctionFeature*> query_ptrs(queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) query_ptrs[i] = &queries[i];
  const std::vector<int> ks(queries.size(), k);

  std::vector<std::vector<core::SearchHit>> results;
  util::TimingStats latency;
  for (long rep = 0; rep < g_repeat; ++rep) {
    util::Timer timer;
    results = index.TopKBatch(query_ptrs, ks);
    latency.Add(static_cast<double>(timer.ElapsedNanos()));
  }
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (results.size() > 1) std::printf("== %s ==\n", queries[i].name.c_str());
    PrintHits(results[i]);
  }
  if (g_repeat > 1) {
    // Machine-readable warm-latency line for scripts/bench_search.sh.
    std::printf(
        "repeat=%ld batch=%zu mean_nanos=%.0f min_nanos=%.0f max_nanos=%.0f\n",
        g_repeat, queries.size(), latency.mean(), latency.min(),
        latency.max());
  }
  return 0;
}

// Online path against a running asteria-serve daemon: only the query is
// compiled and shipped; the daemon already holds the index and the model.
int CmdQuery(int argc, char** argv) {
  if (argc < 5) return Usage();
  if (g_socket.empty()) {
    std::fprintf(stderr, "query: --socket=PATH is required\n");
    return 2;
  }
  minic::Program program;
  if (!LoadProgram(argv[2], &program)) return 1;
  const std::string query_fn = argv[3];
  const binary::Isa query_isa = ParseIsa(argv[4]);
  int k = 10;
  if (!ParseTopK(argc, argv, 5, &k)) return 1;

  auto result = compiler::CompileProgram(program, query_isa, argv[2]);
  if (!result.ok) {
    std::fprintf(stderr, "compile error: %s\n", result.error.c_str());
    return 1;
  }
  const int fn = result.module.FindFunction(query_fn);
  if (fn < 0) {
    std::fprintf(stderr, "no function '%s'\n", query_fn.c_str());
    return 1;
  }
  auto decompiled = decompiler::DecompileFunction(result.module, fn);
  core::FunctionFeature query;
  query.name = query_fn;
  query.tree = core::AsteriaModel::Preprocess(decompiled.tree);
  query.callee_count = decompiled.callee_count;

  serve::Client client;
  std::string error;
  if (!client.Connect(g_socket, CliClientOptions(), &error)) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }
  std::vector<core::SearchHit> hits;
  util::TimingStats latency;
  for (long i = 0; i < g_repeat; ++i) {
    util::Timer timer;
    if (!client.TopK(query, k, &hits, &error)) {
      std::fprintf(stderr, "%s\n", error.c_str());
      return 1;
    }
    latency.Add(static_cast<double>(timer.ElapsedNanos()));
  }
  PrintHits(hits);
  if (g_repeat > 1) {
    // Machine-readable warm-latency line for scripts/bench_serve.sh.
    std::printf("repeat=%ld mean_nanos=%.0f min_nanos=%.0f max_nanos=%.0f\n",
                g_repeat, latency.mean(), latency.min(), latency.max());
  }
  return 0;
}

int CmdCtl(int argc, char** argv) {
  if (argc < 3) return Usage();
  if (g_socket.empty()) {
    std::fprintf(stderr, "ctl: --socket=PATH is required\n");
    return 2;
  }
  const std::string action = argv[2];
  serve::Client client;
  std::string error;
  if (!client.Connect(g_socket, CliClientOptions(), &error)) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }
  bool ok = false;
  if (action == "ping") ok = client.Ping(&error);
  else if (action == "health") {
    serve::HealthInfo info;
    if (!client.Health(&info, &error)) {
      std::fprintf(stderr, "%s\n", error.c_str());
      return 1;
    }
    std::printf(
        "health: index_size=%llu queue_depth=%llu connections=%llu "
        "draining=%d uptime_ms=%llu answered=%llu shed=%llu "
        "deadline_exceeded=%llu\n",
        static_cast<unsigned long long>(info.index_size),
        static_cast<unsigned long long>(info.queue_depth),
        static_cast<unsigned long long>(info.connections),
        info.draining ? 1 : 0,
        static_cast<unsigned long long>(info.uptime_ms),
        static_cast<unsigned long long>(info.answered),
        static_cast<unsigned long long>(info.shed),
        static_cast<unsigned long long>(info.deadline_exceeded));
    return 0;
  } else if (action == "top" || action == "stats") {
    // Live telemetry view: one kStats round trip per refresh; rates come
    // from differencing the two newest sampler ticks, so they reflect the
    // daemon's own cadence, not this client's.
    for (long iter = 0; iter < g_repeat; ++iter) {
      if (iter > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(500));
      }
      serve::StatsInfo info;
      if (!client.Stats(&info, &error)) {
        std::fprintf(stderr, "%s\n", error.c_str());
        return 1;
      }
      double qps = 0.0, shed_per_s = 0.0, deadline_per_s = 0.0;
      if (info.samples.size() >= 2) {
        const serve::StatsSample& older =
            info.samples[info.samples.size() - 2];
        const serve::StatsSample& newer = info.samples.back();
        const double dt = (static_cast<double>(older.age_ms) -
                           static_cast<double>(newer.age_ms)) /
                          1000.0;
        if (dt > 0) {
          qps = static_cast<double>(newer.replies - older.replies) / dt;
          shed_per_s = static_cast<double>(newer.shed - older.shed) / dt;
          deadline_per_s = static_cast<double>(newer.deadline_exceeded -
                                               older.deadline_exceeded) /
                           dt;
        }
      }
      std::printf(
          "top: uptime_ms=%llu index_size=%llu connections=%llu "
          "queue_depth=%llu\n"
          "     requests=%llu replies=%llu shed=%llu cancelled=%llu "
          "deadline_exceeded=%llu\n"
          "     p50_ms=%.3f p95_ms=%.3f p99_ms=%.3f samples=%zu\n"
          "     qps=%.1f shed_per_s=%.1f deadline_per_s=%.1f\n",
          static_cast<unsigned long long>(info.uptime_ms),
          static_cast<unsigned long long>(info.index_size),
          static_cast<unsigned long long>(info.connections),
          static_cast<unsigned long long>(info.queue_depth),
          static_cast<unsigned long long>(info.requests),
          static_cast<unsigned long long>(info.replies),
          static_cast<unsigned long long>(info.shed),
          static_cast<unsigned long long>(info.cancelled),
          static_cast<unsigned long long>(info.deadline_exceeded),
          static_cast<double>(info.p50_nanos) / 1e6,
          static_cast<double>(info.p95_nanos) / 1e6,
          static_cast<double>(info.p99_nanos) / 1e6, info.samples.size(),
          qps, shed_per_s, deadline_per_s);
      std::fflush(stdout);
    }
    return 0;
  } else if (action == "reload") ok = client.Reload(&error);
  else if (action == "shutdown") ok = client.Shutdown(&error);
  else {
    std::fprintf(stderr,
                 "ctl: unknown action '%s' "
                 "(ping|health|top|reload|shutdown)\n",
                 action.c_str());
    return 2;
  }
  if (!ok) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }
  std::printf("%s: ok\n", action.c_str());
  return 0;
}

int CmdRun(int argc, char** argv) {
  if (argc < 4) return Usage();
  minic::Program program;
  if (!LoadProgram(argv[2], &program)) return 1;
  std::vector<minic::ArgValue> args;
  for (int i = 4; i < argc; ++i) {
    long value = 0;
    if (!ParseInt(argv[i], &value)) {
      std::fprintf(stderr, "bad argument '%s' (expected an integer)\n",
                   argv[i]);
      return 2;
    }
    args.push_back(minic::ArgValue::Scalar(value));
  }
  minic::Interpreter interp(program);
  const auto result = interp.Call(argv[3], std::move(args));
  if (!result.ok) {
    std::fprintf(stderr, "trap: %s\n", result.trap.c_str());
    return 1;
  }
  std::printf("%lld\n", static_cast<long long>(result.value));
  return 0;
}

// Packs synthetic firmware images (the BuildFirmwareCorpus generator) into
// <out_dir>/img-<seed>-<i>.fw — the drop files `ingest` consumes. The
// output is a pure function of (count, seed).
int CmdFwGen(int argc, char** argv) {
  if (argc < 4) return Usage();
  const std::string out_dir = argv[2];
  long count = 0;
  if (!ParseInt(argv[3], &count) || count < 1) {
    std::fprintf(stderr, "bad count '%s' (expected a positive integer)\n",
                 argv[3]);
    return 2;
  }
  long seed = 7;
  if (argc > 4 && (!ParseInt(argv[4], &seed) || seed < 0)) {
    std::fprintf(stderr, "bad seed '%s' (expected a non-negative integer)\n",
                 argv[4]);
    return 2;
  }
  firmware::FirmwareCorpusConfig config;
  config.images = static_cast<int>(count);
  config.seed = static_cast<std::uint64_t>(seed);
  const firmware::FirmwareCorpus corpus =
      firmware::BuildFirmwareCorpus(config);
  if (::mkdir(out_dir.c_str(), 0777) != 0 && errno != EEXIST) {
    std::fprintf(stderr, "cannot create %s: %s\n", out_dir.c_str(),
                 std::strerror(errno));
    return 1;
  }
  int written = 0;
  for (std::size_t i = 0; i < corpus.images.size(); ++i) {
    const std::vector<std::uint8_t> blob = firmware::Pack(corpus.images[i]);
    const std::string path = out_dir + "/img-" + std::to_string(seed) + "-" +
                             std::to_string(i) + ".fw";
    std::FILE* f = std::fopen(path.c_str(), "wb");
    if (f == nullptr ||
        std::fwrite(blob.data(), 1, blob.size(), f) != blob.size()) {
      if (f != nullptr) std::fclose(f);
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return 1;
    }
    std::fclose(f);
    ++written;
  }
  std::printf("packed %d firmware images -> %s\n", written, out_dir.c_str());
  return 0;
}

int CmdIngest(int argc, char** argv) {
  if (argc < 3) return Usage();
  const core::AsteriaConfig config = CliModelConfig();
  core::AsteriaModel model(config);
  if (!LoadWeightsOrWarn(&model, g_weights.empty() ? nullptr
                                                   : g_weights.c_str())) {
    return 1;
  }
  ingest::IngestConfig ingest_config;
  ingest_config.index_dir = argv[2];
  ingest_config.threads = g_threads;
  ingest_config.serve_socket = g_socket;
  ingest::IngestService service(model, ingest_config);
  std::string error;
  if (!service.Open(&error)) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }
  ingest::IngestStats stats;
  int rc = 0;
  for (int i = 3; i < argc; ++i) {
    if (!service.IngestFile(argv[i], &stats, &error)) {
      std::fprintf(stderr, "%s\n", error.c_str());
      rc = 1;
    }
  }
  if (!g_drop_dir.empty()) service.ScanDropDir(g_drop_dir, &stats);
  if (g_compact) {
    int merged_runs = 0;
    if (!service.Compact(&merged_runs, &error)) {
      std::fprintf(stderr, "%s\n", error.c_str());
      rc = 1;
    } else if (merged_runs > 0) {
      std::printf("compacted %d shard run(s)\n", merged_runs);
    }
  }
  if (!stats.report.Clean()) {
    std::fprintf(stderr, "%s\n", stats.report.Summary().c_str());
  }
  std::printf(
      "ingested %d image(s) (%d deduped, %d failed): %d functions indexed, "
      "%d encoded, %d cache hit(s)\n",
      stats.images_published, stats.images_deduped, stats.images_failed,
      stats.functions_indexed, stats.functions_encoded, stats.cache_hits);
  const store::ShardManifest& manifest = service.manifest();
  std::printf("manifest: sequence %llu, %zu shard(s), %llu entries\n",
              static_cast<unsigned long long>(manifest.sequence),
              manifest.shards.size(),
              static_cast<unsigned long long>(manifest.TotalEntries()));
  return rc;
}

int CmdDeltaSearch(int argc, char** argv) {
  if (argc < 3) return Usage();
  double threshold = 0.9;
  if (argc > 3) {
    char* end = nullptr;
    errno = 0;
    threshold = std::strtod(argv[3], &end);
    if (errno != 0 || end == argv[3] || *end != '\0' || threshold < 0.0 ||
        threshold > 1.0) {
      std::fprintf(stderr, "bad threshold '%s' (expected 0..1)\n", argv[3]);
      return 2;
    }
  }
  const core::AsteriaConfig config = CliModelConfig();
  core::AsteriaModel model(config);
  if (!LoadWeightsOrWarn(&model, g_weights.empty() ? nullptr
                                                   : g_weights.c_str())) {
    return 1;
  }
  ingest::DeltaVulnResult result;
  std::string error;
  if (!ingest::DeltaVulnSearch(model, argv[2], threshold, /*beta=*/4,
                               g_threads, &result, &error)) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }
  std::printf(
      "delta vuln search: %d shard(s), %d entries newer than seq %llu\n",
      result.shards_searched, result.entries_searched,
      static_cast<unsigned long long>(result.from_seq));
  util::TextTable table({"CVE", "software", "candidates", "top hit", "F"});
  for (const ingest::DeltaCveRow& row : result.per_cve) {
    std::string top = "-";
    std::string score = "-";
    if (!row.hits.empty()) {
      top = row.hits.front().name;
      char buffer[32];
      std::snprintf(buffer, sizeof(buffer), "%.6f", row.hits.front().score);
      score = buffer;
    }
    table.AddRow({row.cve, row.software, std::to_string(row.hits.size()),
                  top, score});
  }
  std::fputs(table.ToString().c_str(), stdout);
  if (!result.report.Clean()) {
    std::fprintf(stderr, "%s\n", result.report.Summary().c_str());
  }
  std::printf("searched high-water mark advanced to seq %llu\n",
              static_cast<unsigned long long>(result.to_seq));
  return 0;
}

// Prints the persistent CVE-alert log accumulated by delta-search runs.
// Crash-torn or corrupted lines are skipped by the reader and only
// counted, so a dirty log is still fully consultable.
int CmdAlerts(int argc, char** argv) {
  if (argc < 3) return Usage();
  std::vector<ingest::AlertRecord> alerts;
  int corrupt_lines = 0;
  std::string error;
  if (!ingest::ReadAlertLog(argv[2], &alerts, &corrupt_lines, &error)) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }
  util::TextTable table({"seq", "CVE", "software", "function", "hit", "F"});
  for (const ingest::AlertRecord& alert : alerts) {
    char score[32];
    std::snprintf(score, sizeof(score), "%.6f", alert.score);
    table.AddRow({std::to_string(alert.seq), alert.cve, alert.software,
                  alert.function, alert.hit, score});
  }
  std::fputs(table.ToString().c_str(), stdout);
  std::printf("%zu alert(s)", alerts.size());
  if (corrupt_lines > 0) {
    std::printf(", %d corrupt line(s) skipped", corrupt_lines);
  }
  std::printf("\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Extract --threads=N wherever it appears; commands see positional args
  // only. The value is parsed strictly: non-numeric input is an error, not
  // something to clamp to 1 and silently run with.
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      long threads = 0;
      if (!ParseInt(argv[i] + 10, &threads) || threads < 1) {
        std::fprintf(stderr,
                     "bad --threads value '%s' (expected a positive integer)\n",
                     argv[i] + 10);
        return 2;
      }
      g_threads = static_cast<int>(threads);
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      --argc;
      --i;
    } else if (std::strncmp(argv[i], "--fast_encoder=", 15) == 0) {
      const char* value = argv[i] + 15;
      if (std::strcmp(value, "0") != 0 && std::strcmp(value, "1") != 0) {
        std::fprintf(stderr, "bad --fast_encoder value '%s' (want 0 or 1)\n",
                     value);
        return 2;
      }
      g_fast_encoder = value[0] == '1';
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      --argc;
      --i;
    } else if (std::strncmp(argv[i], "--failpoints=", 13) == 0) {
      const std::string spec = argv[i] + 13;
      if (spec == "list") return CmdFailpoints();
      std::string error;
      if (!util::ConfigureFailpoints(spec, &error)) {
        std::fprintf(stderr, "bad --failpoints spec: %s\n", error.c_str());
        return 2;
      }
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      --argc;
      --i;
    } else if (std::strncmp(argv[i], "--log_level=", 12) == 0) {
      util::LogLevel level = util::LogLevel::kInfo;
      if (!util::ParseLogLevel(argv[i] + 12, &level)) {
        std::fprintf(stderr,
                     "bad --log_level value '%s' (debug|info|warn|error)\n",
                     argv[i] + 12);
        return 2;
      }
      util::SetLogLevel(level);
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      --argc;
      --i;
    } else if (std::strncmp(argv[i], "--metrics_out=", 14) == 0) {
      g_metrics_out = argv[i] + 14;
      if (g_metrics_out.empty()) {
        std::fprintf(stderr, "bad --metrics_out value (expected a path)\n");
        return 2;
      }
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      --argc;
      --i;
    } else if (std::strncmp(argv[i], "--trace_out=", 12) == 0) {
      g_trace_out = argv[i] + 12;
      if (g_trace_out.empty()) {
        std::fprintf(stderr, "bad --trace_out value (expected a path)\n");
        return 2;
      }
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      --argc;
      --i;
    } else if (std::strncmp(argv[i], "--socket=", 9) == 0) {
      g_socket = argv[i] + 9;
      if (g_socket.empty()) {
        std::fprintf(stderr, "bad --socket value (expected a path)\n");
        return 2;
      }
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      --argc;
      --i;
    } else if (std::strncmp(argv[i], "--repeat=", 9) == 0) {
      if (!ParseInt(argv[i] + 9, &g_repeat) || g_repeat < 1) {
        std::fprintf(stderr,
                     "bad --repeat value '%s' (expected a positive integer)\n",
                     argv[i] + 9);
        return 2;
      }
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      --argc;
      --i;
    } else if (std::strncmp(argv[i], "--batch_file=", 13) == 0) {
      g_batch_file = argv[i] + 13;
      if (g_batch_file.empty()) {
        std::fprintf(stderr, "bad --batch_file value (expected a path)\n");
        return 2;
      }
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      --argc;
      --i;
    } else if (std::strncmp(argv[i], "--weights=", 10) == 0) {
      g_weights = argv[i] + 10;
      if (g_weights.empty()) {
        std::fprintf(stderr, "bad --weights value (expected a path)\n");
        return 2;
      }
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      --argc;
      --i;
    } else if (std::strncmp(argv[i], "--drop_dir=", 11) == 0) {
      g_drop_dir = argv[i] + 11;
      if (g_drop_dir.empty()) {
        std::fprintf(stderr, "bad --drop_dir value (expected a path)\n");
        return 2;
      }
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      --argc;
      --i;
    } else if (std::strcmp(argv[i], "--compact") == 0) {
      g_compact = true;
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      --argc;
      --i;
    } else if (std::strncmp(argv[i], "--deadline_ms=", 14) == 0) {
      if (!ParseInt(argv[i] + 14, &g_deadline_ms) || g_deadline_ms < 0) {
        std::fprintf(
            stderr,
            "bad --deadline_ms value '%s' (expected a non-negative integer)\n",
            argv[i] + 14);
        return 2;
      }
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      --argc;
      --i;
    } else if (std::strncmp(argv[i], "--retries=", 10) == 0) {
      if (!ParseInt(argv[i] + 10, &g_retries) || g_retries < 0) {
        std::fprintf(
            stderr,
            "bad --retries value '%s' (expected a non-negative integer)\n",
            argv[i] + 10);
        return 2;
      }
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      --argc;
      --i;
    } else if (std::strncmp(argv[i], "--retry_seed=", 13) == 0) {
      if (!ParseInt(argv[i] + 13, &g_retry_seed) || g_retry_seed < 0) {
        std::fprintf(
            stderr,
            "bad --retry_seed value '%s' (expected a non-negative integer)\n",
            argv[i] + 13);
        return 2;
      }
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      --argc;
      --i;
    }
  }
  int rc = 2;
  if (argc < 2) {
    rc = Usage();
  } else {
    const std::string command = argv[1];
    if (command == "failpoints") rc = CmdFailpoints();
    else if (command == "gen") rc = CmdGen(argc, argv);
    else if (command == "compile") rc = CmdCompile(argc, argv);
    else if (command == "decompile") rc = CmdDecompile(argc, argv);
    else if (command == "dot") rc = CmdDot(argc, argv);
    else if (command == "stats") rc = CmdStats(argc, argv);
    else if (command == "sim") rc = CmdSim(argc, argv);
    else if (command == "search") rc = CmdSearch(argc, argv);
    else if (command == "index-build") rc = CmdIndexBuild(argc, argv);
    else if (command == "index-info") rc = CmdIndexInfo(argc, argv);
    else if (command == "index-query") rc = CmdIndexQuery(argc, argv);
    else if (command == "query") rc = CmdQuery(argc, argv);
    else if (command == "ctl") rc = CmdCtl(argc, argv);
    else if (command == "run") rc = CmdRun(argc, argv);
    else if (command == "fw-gen") rc = CmdFwGen(argc, argv);
    else if (command == "ingest") rc = CmdIngest(argc, argv);
    else if (command == "delta-search") rc = CmdDeltaSearch(argc, argv);
    else if (command == "alerts") rc = CmdAlerts(argc, argv);
    else rc = Usage();
  }
  // Emit the snapshot even when the command failed: a run that tripped a
  // failpoint or hit corruption is exactly the one worth inspecting.
  if (!g_metrics_out.empty()) {
    std::string error;
    if (!util::SnapshotMetrics().WriteJson(g_metrics_out, &error)) {
      std::fprintf(stderr, "cannot write --metrics_out: %s\n", error.c_str());
      if (rc == 0) rc = 1;
    }
  }
  if (!g_trace_out.empty()) {
    std::string error;
    if (!util::WriteRequestLogFile(g_trace_out,
                                   util::GlobalRequestLog().Snapshot(),
                                   &error)) {
      std::fprintf(stderr, "cannot write --trace_out: %s\n", error.c_str());
      if (rc == 0) rc = 1;
    }
  }
  return rc;
}
